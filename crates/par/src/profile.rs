//! Wall-clock attribution for the worker pool.
//!
//! The pool's determinism contract says parallelism may never change
//! *what* is computed — which leaves one question the simulated clock
//! cannot answer: where does the **host** wall time go when a parallel
//! configuration runs slower than the sequential one? This module measures
//! exactly that, and nothing else: it never touches simulated time, task
//! ordering, fault schedules, or metrics, so every output of the system is
//! byte-identical with profiling on or off.
//!
//! ## Model
//!
//! A [`PoolProfiler`] is installed *ambiently* on the calling thread
//! ([`install`]); pool entry points pick it up from thread-local storage,
//! so call sites deep inside `omega-linalg` or `omega-spmm` need no
//! plumbing. Worker threads do **not** inherit the ambient profiler — a
//! nested pool call from a worker (the pool never does this today) would
//! simply go unprofiled rather than double-count.
//!
//! Every parallel pool call is decomposed per worker slot into four
//! exhaustive, disjoint interval classes measured on the monotonic clock:
//!
//! * **execute** — time inside the user closure (plus the result-slot
//!   store),
//! * **idle** — time inside the slot loop but outside any task (claim
//!   contention, steal scans, tail starvation),
//! * **park** — wake latency: the span from job post to the moment a
//!   parked pool worker claimed its slot (zero for the caller's slot,
//!   which starts immediately; the whole call span for slots revoked
//!   before any worker woke),
//! * **barrier** — completion-latch tail and dispatch bookkeeping outside
//!   the slot loop.
//!
//! By construction `execute + idle + park + barrier == worker wall span`
//! exactly (the span being the caller-observed call interval) — the
//! invariant the property tests pin. Successful steals are counted per
//! slot alongside, so imbalance diagnoses show whether the deques
//! rebalanced skewed work.
//!
//! Attribution is by **label**: the innermost [`phase_scope`] on the
//! calling thread if one is active (e.g. `"tsvd"`, `"topk"`), otherwise
//! the call site's static label (e.g. `"linalg.gemm"`). Sequential
//! fallbacks that bypass the pool entirely are attributed through
//! [`record_seq`] so phase breakdowns still account for them.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cap on stored per-call timeline records (aggregates are always exact).
const MAX_CALL_RECORDS: usize = 1024;
/// Cap on stored task intervals per worker per call (counts stay exact).
const MAX_TASK_INTERVALS: usize = 64;

/// Aggregated wall-clock profile for one attribution label (a phase name
/// or a pool call site). All durations are nanoseconds of host wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Parallel pool calls attributed to this label.
    pub calls: u64,
    /// Sequential executions (inline pool path or [`record_seq`]).
    pub seq_calls: u64,
    /// Tasks executed (parallel tasks + sequential items).
    pub tasks: u64,
    /// Worker threads spawned across all parallel calls.
    pub workers: u64,
    /// CPU-time sums across workers.
    pub exec_ns: u64,
    pub idle_ns: u64,
    pub barrier_ns: u64,
    /// Wake latency sum: job post → slot claim, per pool-worker slot.
    pub park_ns: u64,
    /// Successful steals (tasks claimed from another slot's range).
    pub steals: u64,
    /// Σ over workers of their call-wall span; equals
    /// `exec_ns + idle_ns + barrier_ns + park_ns` exactly.
    pub worker_wall_ns: u64,
    /// Caller-observed wall time of parallel calls.
    pub wall_ns: u64,
    /// `wall_ns` attributed to the four classes by dividing the CPU sums
    /// over the worker count; `exec_wall_ns + idle_wall_ns + park_wall_ns
    /// + barrier_wall_ns == wall_ns` exactly (barrier takes the residue).
    pub exec_wall_ns: u64,
    pub idle_wall_ns: u64,
    pub park_wall_ns: u64,
    pub barrier_wall_ns: u64,
    /// Wall time of sequential executions attributed to this label.
    pub seq_wall_ns: u64,
    /// Self wall time of [`phase_scope`]s with this label (scope duration
    /// minus nested scopes; includes pool-call wall time).
    pub scope_self_wall_ns: u64,
    pub scope_calls: u64,
    /// Σ per-call max worker execute time (imbalance numerator).
    pub sum_max_exec_ns: u64,
    /// Σ per-call mean worker execute time (imbalance denominator).
    pub sum_mean_exec_ns: u64,
}

impl PoolProfile {
    /// Fraction of worker wall spans spent executing tasks, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.worker_wall_ns == 0 {
            return 0.0;
        }
        self.exec_ns as f64 / self.worker_wall_ns as f64
    }

    /// Mean over calls of `max worker exec / mean worker exec`; 1.0 is a
    /// perfectly balanced pool, larger means stragglers.
    pub fn imbalance(&self) -> f64 {
        if self.sum_mean_exec_ns == 0 {
            return 1.0;
        }
        self.sum_max_exec_ns as f64 / self.sum_mean_exec_ns as f64
    }

    /// Wall nanoseconds attributed to useful work under this label.
    ///
    /// For labels with phase scopes the scope self time already contains
    /// the pool-call wall time (and any sequential work inside the scope),
    /// so the task component is the scope self time minus the non-work
    /// pool components. For bare call-site labels it is the wall-share of
    /// execution plus sequential fallbacks.
    pub fn task_wall_ns(&self) -> u64 {
        if self.scope_calls > 0 {
            self.scope_self_wall_ns
                .saturating_sub(self.idle_wall_ns)
                .saturating_sub(self.park_wall_ns)
                .saturating_sub(self.barrier_wall_ns)
        } else {
            self.exec_wall_ns + self.seq_wall_ns
        }
    }

    /// Total wall nanoseconds this label accounts for
    /// (`task + idle + park + barrier`).
    pub fn attributed_wall_ns(&self) -> u64 {
        self.task_wall_ns() + self.idle_wall_ns + self.park_wall_ns + self.barrier_wall_ns
    }

    /// Fold another profile into this one (used for whole-run totals).
    pub fn merge(&mut self, other: &PoolProfile) {
        self.calls += other.calls;
        self.seq_calls += other.seq_calls;
        self.tasks += other.tasks;
        self.workers += other.workers;
        self.exec_ns += other.exec_ns;
        self.idle_ns += other.idle_ns;
        self.barrier_ns += other.barrier_ns;
        self.park_ns += other.park_ns;
        self.steals += other.steals;
        self.worker_wall_ns += other.worker_wall_ns;
        self.wall_ns += other.wall_ns;
        self.exec_wall_ns += other.exec_wall_ns;
        self.idle_wall_ns += other.idle_wall_ns;
        self.park_wall_ns += other.park_wall_ns;
        self.barrier_wall_ns += other.barrier_wall_ns;
        self.seq_wall_ns += other.seq_wall_ns;
        self.scope_self_wall_ns += other.scope_self_wall_ns;
        self.scope_calls += other.scope_calls;
        self.sum_max_exec_ns += other.sum_max_exec_ns;
        self.sum_mean_exec_ns += other.sum_mean_exec_ns;
    }
}

/// One worker slot's timeline within one pool call. Times are
/// microseconds since the profiler's epoch (coarse, for timeline export);
/// the exact nanosecond sums live in the aggregates.
#[derive(Debug, Clone)]
pub struct WorkerTimeline {
    pub loop_start_us: u64,
    pub loop_end_us: u64,
    /// First [`MAX_TASK_INTERVALS`] task intervals `(start_us, end_us)`.
    pub tasks: Vec<(u64, u64)>,
    pub task_count: u64,
    pub exec_ns: u64,
    pub idle_ns: u64,
    /// Wake latency before this slot's loop (0 for the caller's slot 0;
    /// the full call span for a slot revoked before any worker woke).
    pub park_ns: u64,
    /// Tasks this slot claimed from another slot's range.
    pub steals: u64,
}

/// One parallel pool call, kept (capped) for timeline export.
#[derive(Debug, Clone)]
pub struct PoolCallRecord {
    /// Static call-site label.
    pub site: &'static str,
    /// Attribution label (innermost phase scope, else the site).
    pub label: String,
    pub start_us: u64,
    pub end_us: u64,
    pub workers: Vec<WorkerTimeline>,
}

#[derive(Default)]
struct ProfState {
    labels: BTreeMap<String, PoolProfile>,
    calls: Vec<PoolCallRecord>,
    dropped_calls: u64,
}

struct ProfInner {
    epoch: Instant,
    state: Mutex<ProfState>,
}

/// Wall-clock pool profiler. Cheap to clone (an `Arc`); the default /
/// disabled profiler turns every operation into a no-op and the pool's
/// hot paths stay exactly as they were.
#[derive(Clone, Default)]
pub struct PoolProfiler {
    inner: Option<Arc<ProfInner>>,
}

impl std::fmt::Debug for PoolProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolProfiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl PoolProfiler {
    pub fn disabled() -> PoolProfiler {
        PoolProfiler { inner: None }
    }

    /// A live profiler whose wall epoch is "now".
    pub fn enabled() -> PoolProfiler {
        PoolProfiler {
            inner: Some(Arc::new(ProfInner {
                epoch: Instant::now(),
                state: Mutex::new(ProfState::default()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Per-label profiles, sorted by label.
    pub fn profiles(&self) -> Vec<(String, PoolProfile)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .labels
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Every label folded together.
    pub fn total(&self) -> PoolProfile {
        let mut total = PoolProfile::default();
        for (_, p) in self.profiles() {
            total.merge(&p);
        }
        total
    }

    /// Stored per-call worker timelines (capped at [`MAX_CALL_RECORDS`]).
    pub fn call_records(&self) -> Vec<PoolCallRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.state.lock().unwrap().calls.clone(),
        }
    }

    /// Parallel calls whose timelines were dropped by the cap (their
    /// aggregates are still exact).
    pub fn dropped_call_records(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.state.lock().unwrap().dropped_calls,
        }
    }

    fn epoch(&self) -> Option<Instant> {
        self.inner.as_ref().map(|i| i.epoch)
    }

    fn record_seq_ns(&self, label: &str, wall_ns: u64, tasks: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        let p = st.labels.entry(label.to_string()).or_default();
        p.seq_calls += 1;
        p.tasks += tasks;
        p.seq_wall_ns += wall_ns;
    }

    fn record_scope(&self, label: &str, self_wall_ns: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        let p = st.labels.entry(label.to_string()).or_default();
        p.scope_calls += 1;
        p.scope_self_wall_ns += self_wall_ns;
    }

    #[allow(clippy::too_many_arguments)]
    fn record_call(
        &self,
        site: &'static str,
        label: &str,
        start_us: u64,
        call_ns: u64,
        tasks: u64,
        workers: Vec<WorkerTimeline>,
    ) {
        let Some(inner) = &self.inner else { return };
        let nworkers = workers.len() as u64;
        let mut exec_total = 0u64;
        let mut idle_total = 0u64;
        let mut park_total = 0u64;
        let mut barrier_total = 0u64;
        let mut steal_total = 0u64;
        let mut max_exec = 0u64;
        // Re-derive idle/park/barrier so the per-slot identity
        // exec + idle + park + barrier == call span holds exactly even
        // under timer coarseness.
        let workers: Vec<WorkerTimeline> = workers
            .into_iter()
            .map(|mut w| {
                w.park_ns = w.park_ns.min(call_ns);
                w.exec_ns = w.exec_ns.min(call_ns - w.park_ns);
                let loop_ns = (w.exec_ns + w.idle_ns)
                    .min(call_ns - w.park_ns)
                    .max(w.exec_ns);
                w.idle_ns = loop_ns - w.exec_ns;
                exec_total += w.exec_ns;
                idle_total += w.idle_ns;
                park_total += w.park_ns;
                barrier_total += call_ns - w.park_ns - loop_ns;
                steal_total += w.steals;
                max_exec = max_exec.max(w.exec_ns);
                w
            })
            .collect();
        let mut st = inner.state.lock().unwrap();
        let p = st.labels.entry(label.to_string()).or_default();
        p.calls += 1;
        p.tasks += tasks;
        p.workers += nworkers;
        p.exec_ns += exec_total;
        p.idle_ns += idle_total;
        p.barrier_ns += barrier_total;
        p.park_ns += park_total;
        p.steals += steal_total;
        p.worker_wall_ns += nworkers * call_ns;
        p.wall_ns += call_ns;
        let exec_wall = exec_total.checked_div(nworkers).unwrap_or(0);
        let idle_wall = idle_total.checked_div(nworkers).unwrap_or(0);
        let park_wall = park_total.checked_div(nworkers).unwrap_or(0);
        p.exec_wall_ns += exec_wall;
        p.idle_wall_ns += idle_wall;
        p.park_wall_ns += park_wall;
        p.barrier_wall_ns += call_ns - exec_wall - idle_wall - park_wall;
        p.sum_max_exec_ns += max_exec;
        p.sum_mean_exec_ns += exec_wall;
        if st.calls.len() < MAX_CALL_RECORDS {
            st.calls.push(PoolCallRecord {
                site,
                label: label.to_string(),
                start_us,
                end_us: start_us + call_ns / 1_000,
                workers,
            });
        } else {
            st.dropped_calls += 1;
        }
    }
}

// ---- ambient install + phase scopes ---------------------------------------

struct ScopeFrame {
    label: &'static str,
    start: Instant,
    /// Wall ns consumed by nested scopes (subtracted for self time).
    child_ns: u64,
}

#[derive(Default)]
struct Ambient {
    profiler: PoolProfiler,
    scopes: Vec<ScopeFrame>,
}

thread_local! {
    static AMBIENT: RefCell<Ambient> = RefCell::new(Ambient::default());
}

/// Restores the previously installed profiler when dropped.
#[must_use = "dropping the guard immediately uninstalls the profiler"]
pub struct ProfilerGuard {
    /// `None` when the install was a nested no-op (an enabled profiler
    /// was already ambient) — dropping restores nothing.
    prev: Option<PoolProfiler>,
}

impl ProfilerGuard {
    /// Whether this guard actually installed its profiler. `false` means
    /// the install was a no-op because an enabled profiler was already
    /// ambient on this thread (the outer install wins).
    pub fn installed(&self) -> bool {
        self.prev.is_some()
    }
}

/// Install `profiler` as the calling thread's ambient profiler for the
/// lifetime of the returned guard. Pool entry points and [`phase_scope`] /
/// [`record_seq`] invoked from this thread report into it; worker threads
/// spawned by the pool do not inherit it.
///
/// Nested installs are a **documented no-op**: if an enabled profiler is
/// already ambient on this thread (e.g. the plane engine installs while
/// serve scopes are live), the outer profiler keeps recording, the
/// returned guard reports [`ProfilerGuard::installed`]` == false`, and
/// dropping it restores nothing — so an inner layer can never silently
/// steal or truncate an outer layer's attribution window.
pub fn install(profiler: &PoolProfiler) -> ProfilerGuard {
    let already = AMBIENT.with(|a| a.borrow().profiler.is_enabled());
    if already {
        return ProfilerGuard { prev: None };
    }
    let prev = AMBIENT.with(|a| std::mem::replace(&mut a.borrow_mut().profiler, profiler.clone()));
    ProfilerGuard { prev: Some(prev) }
}

impl Drop for ProfilerGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            AMBIENT.with(|a| a.borrow_mut().profiler = prev);
        }
    }
}

/// The calling thread's ambient profiler, if one is installed and enabled.
pub(crate) fn active_profiler() -> Option<PoolProfiler> {
    AMBIENT.with(|a| {
        let a = a.borrow();
        if a.profiler.is_enabled() {
            Some(a.profiler.clone())
        } else {
            None
        }
    })
}

/// Attribution label for a pool call from this thread: the innermost
/// active phase scope, or the call site's static label.
pub(crate) fn current_label(site: &'static str) -> String {
    AMBIENT.with(|a| {
        a.borrow()
            .scopes
            .last()
            .map(|s| s.label.to_string())
            .unwrap_or_else(|| site.to_string())
    })
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let (profiler, label, self_ns) = AMBIENT.with(|a| {
            let mut a = a.borrow_mut();
            let frame = a.scopes.pop().expect("phase scope stack underflow");
            let total_ns = frame.start.elapsed().as_nanos() as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = a.scopes.last_mut() {
                parent.child_ns += total_ns;
            }
            (a.profiler.clone(), frame.label, self_ns)
        });
        profiler.record_scope(label, self_ns);
    }
}

/// Run `f` inside a named wall-clock phase.
///
/// While the scope is active, pool calls and [`record_seq`] on this thread
/// attribute to `label` instead of their call-site labels. The scope's
/// *self* time (duration minus nested scopes) accrues to the label's
/// profile. With no profiler installed this is a single thread-local read.
pub fn phase_scope<R>(label: &'static str, f: impl FnOnce() -> R) -> R {
    let enabled = AMBIENT.with(|a| a.borrow().profiler.is_enabled());
    if !enabled {
        return f();
    }
    AMBIENT.with(|a| {
        a.borrow_mut().scopes.push(ScopeFrame {
            label,
            start: Instant::now(),
            child_ns: 0,
        })
    });
    let _guard = ScopeGuard;
    f()
}

/// Time a sequential computation that bypasses the pool (e.g. a
/// below-threshold dense-kernel fallback), attributing it like a pool call
/// would be: to the innermost phase scope, else to `label`.
pub fn record_seq<R>(label: &'static str, f: impl FnOnce() -> R) -> R {
    let Some(profiler) = active_profiler() else {
        return f();
    };
    let t0 = Instant::now();
    let out = f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    profiler.record_seq_ns(&current_label(label), wall_ns, 1);
    out
}

// ---- hooks used by the pool entry points ----------------------------------

/// Per-slot measurement state threaded through a profiled pool call.
pub(crate) struct WorkerMeter {
    epoch: Instant,
    loop_start: Instant,
    loop_start_us: u64,
    park_ns: u64,
    exec_ns: u64,
    task_count: u64,
    tasks: Vec<(u64, u64)>,
}

impl WorkerMeter {
    pub(crate) fn start(epoch: Instant, park_ns: u64) -> WorkerMeter {
        let now = Instant::now();
        WorkerMeter {
            epoch,
            loop_start: now,
            loop_start_us: now.duration_since(epoch).as_micros() as u64,
            park_ns,
            exec_ns: 0,
            task_count: 0,
            tasks: Vec::new(),
        }
    }

    /// Time one task: `f` is the closure call plus its result store.
    pub(crate) fn task<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let dur = t0.elapsed();
        self.exec_ns += dur.as_nanos() as u64;
        self.task_count += 1;
        if self.tasks.len() < MAX_TASK_INTERVALS {
            let start_us = t0.duration_since(self.epoch).as_micros() as u64;
            self.tasks
                .push((start_us, start_us + dur.as_micros() as u64));
        }
        out
    }

    pub(crate) fn finish(self, steals: u64) -> WorkerTimeline {
        let loop_ns = self.loop_start.elapsed().as_nanos() as u64;
        let loop_end_us = self.loop_start_us + loop_ns / 1_000;
        WorkerTimeline {
            loop_start_us: self.loop_start_us,
            loop_end_us,
            tasks: self.tasks,
            task_count: self.task_count,
            exec_ns: self.exec_ns,
            idle_ns: loop_ns.saturating_sub(self.exec_ns),
            park_ns: self.park_ns,
            steals,
        }
    }
}

/// A slot's meter inside a dispatch: measuring when the call is profiled,
/// free when it is not.
pub(crate) enum SlotMeter {
    Off,
    On(WorkerMeter),
}

impl SlotMeter {
    /// Time one task (no-op wrapper when unprofiled).
    pub(crate) fn task<R>(&mut self, f: impl FnOnce() -> R) -> R {
        match self {
            SlotMeter::Off => f(),
            SlotMeter::On(m) => m.task(f),
        }
    }
}

/// Caller-side measurement for one profiled parallel call.
pub(crate) struct CallMeter {
    profiler: PoolProfiler,
    site: &'static str,
    label: String,
    epoch: Instant,
    start: Instant,
}

impl CallMeter {
    /// `None` when no enabled profiler is ambient — callers take the
    /// unprofiled fast path.
    pub(crate) fn begin(site: &'static str) -> Option<CallMeter> {
        let profiler = active_profiler()?;
        let epoch = profiler.epoch()?;
        Some(CallMeter {
            label: current_label(site),
            profiler,
            site,
            epoch,
            start: Instant::now(),
        })
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn finish(self, tasks: u64, workers: Vec<WorkerTimeline>) {
        let call_ns = self.start.elapsed().as_nanos() as u64;
        let start_us = self.start.duration_since(self.epoch).as_micros() as u64;
        self.profiler
            .record_call(self.site, &self.label, start_us, call_ns, tasks, workers);
    }

    /// Record an inline (sequential-path) execution of a pool entry point.
    pub(crate) fn finish_seq(self, tasks: u64) {
        let call_ns = self.start.elapsed().as_nanos() as u64;
        self.profiler
            .record_seq_ns(&self.label, call_ns, tasks.max(1));
    }
}
