//! The persistent work-stealing pool behind [`crate::run`] and
//! [`crate::for_each_chunk`].
//!
//! ## Why persistent
//!
//! The first cut of `omega-par` spawned a fresh `thread::scope` per call.
//! The committed baselines showed what that costs: `serving_par8` spent
//! 383 ms of a 451 ms run in spawn/join barriers. This module keeps one
//! process-wide set of workers alive instead — parked on a condvar between
//! calls — so a pool call pays a wake + a completion latch, not a
//! spawn + join.
//!
//! ## Shape of a call
//!
//! A parallel call with `w` worker *slots* over `n` tasks:
//!
//! 1. partitions `0..n` into `w` contiguous **range deques** (slot `s`
//!    owns `[s·n/w, (s+1)·n/w)`);
//! 2. posts a type-erased job offering slots `1..w` to the parked workers
//!    and runs slot `0` on the **caller's own thread** (no wake latency,
//!    and the caller is never idle while its workers compute);
//! 3. every participant drains its own deque from the low end
//!    (ascending, cache-friendly), then **steals** from the high end of
//!    the other slots' deques — owner and thief only collide on the last
//!    item of a range, and every index is claimed exactly once by an
//!    atomic compare-exchange;
//! 4. the caller revokes unclaimed slots and blocks on a latch until
//!    every claimed slot has finished, then collects results in index
//!    order.
//!
//! Stealing reorders *execution*, never *results*: work items partition
//! output indices, merges happen in fixed index order on the caller, and
//! fault streams are keyed by what is processed (shard id, request index,
//! column batch) — so the simulated clock, byte ledger, and fault
//! schedules are byte-identical at every thread count and under every
//! steal interleaving.
//!
//! ## Scratch arenas
//!
//! Each participating OS thread (pool workers *and* callers) owns a
//! type-keyed scratch arena that survives across calls: [`with_scratch`]
//! hands a task loop the thread's reusable `S` (score buffers, reusable
//! `ThreadMem` contexts, …) and returns it afterwards. Scratch is
//! *dirty-reusable* memory — tasks must fully initialise whatever they
//! read, which every call site already guaranteed for within-call reuse.
//!
//! ## Adaptive sequential fallback
//!
//! Tiny workloads never touch the pool. Each call site keeps an EWMA
//! estimate of its per-task wall cost (measured on every call, sequential
//! or parallel); a call dispatches to the pool only when
//! `estimated_task_ns × task_count` reaches the policy cutoff — below it
//! the call runs inline on the caller (attributed through `record_seq`,
//! so phase breakdowns still account for it). With an unknown estimate
//! the call dispatches optimistically and the measurement adapts the next
//! one. On a host without real parallelism the pool can never win, so the
//! default [`DispatchPolicy`] also runs everything inline when
//! `available_parallelism() <= 1` and caps slot counts at the core count
//! otherwise; tests force the pool with [`with_dispatch_policy`].
//!
//! Which path runs affects wall time and its attribution only — both
//! paths compute bit-identical results by the pool's contract.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::profile::{SlotMeter, WorkerMeter, WorkerTimeline};

/// Hard cap on worker slots per call (caller + spawned pool workers).
pub const MAX_WORKER_SLOTS: usize = 16;

/// Default projected-work cutoff: calls whose estimated total task time
/// is below this run inline. Roughly 10x the measured cost of one pool
/// dispatch (wake + latch) on commodity hardware, so the pool is only
/// entered when it can plausibly pay for itself.
pub const SEQ_CUTOFF_NS: u64 = 120_000;

// ---- dispatch policy -------------------------------------------------------

/// When does a call dispatch to the pool instead of running inline?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Projected total task nanoseconds (`estimate × task count`) below
    /// which a call runs inline on the caller. `0` disables the size
    /// gate. A call **at** the cutoff dispatches; below it stays inline.
    pub seq_cutoff_ns: u64,
    /// Honour the host's available parallelism: with one core every call
    /// runs inline (the pool cannot win), and slot counts are capped at
    /// the core count otherwise.
    pub respect_cores: bool,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy {
            seq_cutoff_ns: SEQ_CUTOFF_NS,
            respect_cores: true,
        }
    }
}

impl DispatchPolicy {
    /// Always dispatch parallel calls to the pool, regardless of host
    /// core count or task-size estimates. For tests and microbenchmarks
    /// that must exercise the pool machinery deterministically.
    pub fn always_parallel() -> DispatchPolicy {
        DispatchPolicy {
            seq_cutoff_ns: 0,
            respect_cores: false,
        }
    }
}

thread_local! {
    static POLICY_OVERRIDE: Cell<Option<DispatchPolicy>> = const { Cell::new(None) };
    /// Set while this thread is executing pool tasks (as caller slot 0 or
    /// as a pool worker): nested pool calls run inline instead of
    /// deadlocking on the single-job pool.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with `policy` overriding the default [`DispatchPolicy`] on
/// this thread (pool calls made by `f`, directly or through library
/// layers, use it). Restores the previous override on exit, panics
/// included.
pub fn with_dispatch_policy<R>(policy: DispatchPolicy, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<DispatchPolicy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            POLICY_OVERRIDE.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(POLICY_OVERRIDE.with(|p| p.replace(Some(policy))));
    f()
}

fn current_policy() -> DispatchPolicy {
    POLICY_OVERRIDE.with(|p| p.get()).unwrap_or_default()
}

fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

// ---- per-site task-cost estimates ------------------------------------------

fn estimates() -> &'static Mutex<HashMap<&'static str, u64>> {
    static ESTIMATES: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
    ESTIMATES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Seed the per-task wall-cost estimate for a call site (nanoseconds per
/// task). Production code never needs this — estimates adapt from
/// measured calls — but the fallback boundary tests pin exact behaviour
/// with it.
pub fn prime_task_estimate(site: &'static str, ns_per_task: u64) {
    lock(estimates()).insert(site, ns_per_task.max(1));
}

/// The current per-task wall-cost estimate for a call site, if any call
/// has been measured (or primed) for it.
pub fn task_estimate(site: &str) -> Option<u64> {
    lock(estimates()).get(site).copied()
}

/// Fold a measured sample into the site's EWMA (weight 1/4 on the new
/// sample, so one outlier cannot flip the dispatch decision).
pub(crate) fn update_task_estimate(site: &'static str, sample_ns_per_task: u64) {
    let sample = sample_ns_per_task.max(1);
    let mut map = lock(estimates());
    let e = map.entry(site).or_insert(sample);
    *e = (*e - *e / 4).saturating_add(sample / 4).max(1);
}

/// How many worker slots a call should use: `1` means run inline.
///
/// Inline when: the caller asked for one thread, there is at most one
/// task, the caller is itself inside a pool task (nested calls never
/// re-enter the pool), the host has a single core (under
/// `respect_cores`), or the projected total task time
/// (`estimate × n`) falls below the policy cutoff. Otherwise
/// `threads.min(n)` capped by the core count (under `respect_cores`) and
/// [`MAX_WORKER_SLOTS`].
pub(crate) fn parallel_width(site: &'static str, threads: usize, n: usize) -> usize {
    if threads <= 1 || n <= 1 || IN_POOL_TASK.with(|f| f.get()) {
        return 1;
    }
    let policy = current_policy();
    let mut cap = MAX_WORKER_SLOTS;
    if policy.respect_cores {
        let cores = host_parallelism();
        if cores <= 1 {
            return 1;
        }
        cap = cap.min(cores);
    }
    if policy.seq_cutoff_ns > 0 {
        if let Some(est) = task_estimate(site) {
            if est.saturating_mul(n as u64) < policy.seq_cutoff_ns {
                return 1;
            }
        }
    }
    threads.min(n).min(cap).max(1)
}

// ---- per-thread scratch arenas ---------------------------------------------

thread_local! {
    static ARENA: RefCell<HashMap<TypeId, Box<dyn Any + Send>>> =
        RefCell::new(HashMap::new());
}

/// Run `f` with this thread's persistent scratch of type `S`, creating it
/// on first use. The scratch survives across pool calls (that is the
/// point: score buffers and reusable `ThreadMem` contexts amortise their
/// setup over the whole run) and is **dirty** — `f` must initialise
/// whatever it reads. The entry is taken out of the arena while `f` runs,
/// so nested uses of the same type get an independent scratch.
pub fn with_scratch<S, R>(f: impl FnOnce(&mut S) -> R) -> R
where
    S: Default + Send + 'static,
{
    let mut scratch: Box<S> = ARENA
        .with(|a| a.borrow_mut().remove(&TypeId::of::<S>()))
        .and_then(|b| b.downcast::<S>().ok())
        .unwrap_or_default();
    let out = f(&mut scratch);
    ARENA.with(|a| a.borrow_mut().insert(TypeId::of::<S>(), scratch));
    out
}

// ---- range deques ----------------------------------------------------------

/// A contiguous index range claimed from both ends: the owning slot pops
/// ascending from the low end, thieves steal descending from the high
/// end. Packed into one atomic word (`lo` high 32 bits, `hi` low 32) so
/// a claim is a single compare-exchange and every index is handed out
/// exactly once.
struct RangeDeque(AtomicU64);

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

impl RangeDeque {
    fn new(lo: usize, hi: usize) -> RangeDeque {
        RangeDeque(AtomicU64::new(pack(lo as u32, hi as u32)))
    }

    /// Owner claim: the lowest unclaimed index.
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = ((cur >> 32) as u32, cur as u32);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief claim: the highest unclaimed index.
    fn steal_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = ((cur >> 32) as u32, cur as u32);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, hi - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - 1) as usize),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Hands a slot its task indices: own range first (ascending), then
/// steals from the other slots' ranges (descending, scanning victims from
/// the next slot round-robin). Counts successful steals for the profiler.
pub(crate) struct TaskClaimer<'a> {
    deques: &'a [RangeDeque],
    slot: usize,
    steals: u64,
}

impl TaskClaimer<'_> {
    pub(crate) fn next(&mut self) -> Option<usize> {
        if let Some(i) = self.deques[self.slot].pop_front() {
            return Some(i);
        }
        // Deques only shrink, so one full scan finding nothing means done.
        let w = self.deques.len();
        for off in 1..w {
            let victim = (self.slot + off) % w;
            if let Some(i) = self.deques[victim].steal_back() {
                self.steals += 1;
                return Some(i);
            }
        }
        None
    }
}

// ---- the persistent pool ---------------------------------------------------

/// Slot body: `(slot index, park_ns)`. Lifetime-erased when posted; the
/// dispatch protocol guarantees the caller outlives every use.
type SlotFn<'a> = dyn Fn(usize, u64) + Sync + 'a;

struct Job {
    call: *const SlotFn<'static>,
    sync: *const CallSync,
    /// Total worker slots (slot 0 is the caller's).
    slots: usize,
    /// Next slot to hand to a waking pool worker.
    next_slot: usize,
    /// When the job was posted — a claiming worker's park time is the
    /// latency from here to its claim.
    posted: Instant,
}

// The raw pointers are only dereferenced between a slot claim (under the
// pool lock, job present) and the claimer's completion signal, and the
// caller blocks until every claimed slot has signalled — so the pointees
// (on the caller's stack) strictly outlive every use.
unsafe impl Send for Job {}

/// Per-call completion latch shared between the caller and the pool
/// workers that claimed one of its slots.
struct CallSync {
    /// Pool workers that claimed a slot (incremented under the pool
    /// lock, so it is final once the caller has revoked the job).
    claimed: AtomicUsize,
    finished: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct PoolState {
    job: Option<Job>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
    /// Serialises dispatches: the pool runs one job at a time, and a
    /// caller holds the door from post to completion. Concurrent callers
    /// queue here (each call already fans out over every slot, so
    /// serialising calls loses no parallelism).
    door: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            spawned: 0,
        }),
        work: Condvar::new(),
        door: Mutex::new(()),
    })
}

/// Pool worker threads spawned so far in this process. Workers are
/// lazily spawned up to the largest slot count any call has asked for
/// (capped at [`MAX_WORKER_SLOTS`]` - 1`) and then live for the process
/// lifetime — the stress suite asserts this never grows past the
/// warm-up high-water mark.
pub fn workers_spawned() -> usize {
    lock(&pool().state).spawned
}

fn worker_main() {
    let pool = pool();
    loop {
        let (call, sync, slot, park_ns) = {
            let mut st = lock(&pool.state);
            loop {
                if let Some(job) = st.job.as_mut() {
                    let slot = job.next_slot;
                    job.next_slot += 1;
                    let out = (
                        job.call,
                        job.sync,
                        slot,
                        job.posted.elapsed().as_nanos() as u64,
                    );
                    // SAFETY: the job is live (present in the state), so
                    // its sync pointee is too; claiming under the pool
                    // lock is what makes `claimed` final at revoke time.
                    unsafe { (*job.sync).claimed.fetch_add(1, Ordering::Relaxed) };
                    if job.next_slot >= job.slots {
                        st.job = None;
                    }
                    break out;
                }
                st = pool.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        struct TaskFlag;
        impl Drop for TaskFlag {
            fn drop(&mut self) {
                IN_POOL_TASK.with(|f| f.set(false));
            }
        }
        IN_POOL_TASK.with(|f| f.set(true));
        let flag = TaskFlag;
        // SAFETY: the caller blocks on the latch below before releasing
        // the closure, so the pointer is live for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*call)(slot, park_ns) }));
        drop(flag);
        // SAFETY: the caller cannot return until this slot signals.
        let sync = unsafe { &*sync };
        if let Err(payload) = result {
            let mut slot = lock(&sync.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut fin = lock(&sync.finished);
        *fin += 1;
        sync.done.notify_all();
    }
}

/// Everything a dispatch measured, for estimates and profiling.
pub(crate) struct DispatchReport {
    /// Per-slot timelines when an enabled profiler supplied an epoch;
    /// slots that were revoked before a worker woke are synthesised as
    /// pure park time.
    pub timelines: Vec<WorkerTimeline>,
    /// Sum of the slot loop wall spans — the measured total task work,
    /// feeding the per-site estimate.
    pub work_ns: u64,
}

/// Run `body(slot, claimer, meter)` on `slots` participants over tasks
/// `0..n`: slot 0 inline on the caller, slots `1..` on parked pool
/// workers. Returns once every claimed slot has finished; propagates the
/// first panic (worker panics win over the caller's own).
pub(crate) fn dispatch(
    slots: usize,
    n: usize,
    epoch: Option<Instant>,
    body: &(dyn for<'c> Fn(usize, &mut TaskClaimer<'c>, &mut SlotMeter) + Sync),
) -> DispatchReport {
    debug_assert!(slots >= 2 && slots <= n, "dispatch wants 2 <= slots <= n");
    assert!(
        n < u32::MAX as usize,
        "task count overflows the range deques"
    );
    let deques: Vec<RangeDeque> = (0..slots)
        .map(|s| RangeDeque::new(s * n / slots, (s + 1) * n / slots))
        .collect();
    let work_ns = AtomicU64::new(0);
    let timelines: Mutex<Vec<Option<WorkerTimeline>>> =
        Mutex::new((0..slots).map(|_| None).collect());
    let sync = CallSync {
        claimed: AtomicUsize::new(0),
        finished: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };

    let run_slot = |slot: usize, park_ns: u64| {
        let t0 = Instant::now();
        let mut meter = match epoch {
            Some(e) => SlotMeter::On(WorkerMeter::start(e, park_ns)),
            None => SlotMeter::Off,
        };
        let mut claimer = TaskClaimer {
            deques: &deques,
            slot,
            steals: 0,
        };
        body(slot, &mut claimer, &mut meter);
        work_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let SlotMeter::On(m) = meter {
            lock(&timelines)[slot] = Some(m.finish(claimer.steals));
        }
    };

    let pool = pool();
    let _door = pool.door.lock().unwrap_or_else(PoisonError::into_inner);
    let posted = Instant::now();
    {
        // SAFETY (lifetime erasure): the job is revoked and every claimed
        // slot awaited before this function returns, so no worker can
        // touch `run_slot` or `sync` after they are gone.
        let call: &SlotFn = &run_slot;
        let call: &SlotFn<'static> = unsafe { std::mem::transmute(call) };
        let mut st = lock(&pool.state);
        let want = (slots - 1).min(MAX_WORKER_SLOTS - 1);
        while st.spawned < want {
            let spawned = std::thread::Builder::new()
                .name(format!("omega-par-{}", st.spawned))
                .spawn(worker_main);
            match spawned {
                Ok(_) => st.spawned += 1,
                // Can't grow the pool: the call still completes — the
                // caller and whatever workers exist drain every deque.
                Err(_) => break,
            }
        }
        st.job = Some(Job {
            call,
            sync: &sync,
            slots,
            next_slot: 1,
            posted,
        });
    }
    pool.work.notify_all();

    // The caller is slot 0: it starts immediately (zero park) and steals
    // from slow-to-wake slots, so no call waits on the scheduler to make
    // progress.
    struct TaskFlag;
    impl Drop for TaskFlag {
        fn drop(&mut self) {
            IN_POOL_TASK.with(|f| f.set(false));
        }
    }
    let caller_result = catch_unwind(AssertUnwindSafe(|| {
        IN_POOL_TASK.with(|f| f.set(true));
        let _flag = TaskFlag;
        run_slot(0, 0);
    }));

    // Revoke whatever slots no worker claimed, then wait for the claimed
    // ones. After the revocation `claimed` is final (claims happen under
    // the same lock).
    {
        let mut st = lock(&pool.state);
        if let Some(job) = &st.job {
            if std::ptr::eq(job.sync, &sync as *const CallSync) {
                st.job = None;
            }
        }
    }
    let claimed = sync.claimed.load(Ordering::Acquire);
    {
        let mut fin = lock(&sync.finished);
        while *fin < claimed {
            fin = sync.done.wait(fin).unwrap_or_else(PoisonError::into_inner);
        }
    }
    if let Some(payload) = lock(&sync.panic).take() {
        resume_unwind(payload);
    }
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }

    let timelines = match epoch {
        None => Vec::new(),
        Some(e) => {
            let now_us = Instant::now().duration_since(e).as_micros() as u64;
            let parked = posted.elapsed().as_nanos() as u64;
            lock(&timelines)
                .iter_mut()
                .map(|slot| {
                    slot.take().unwrap_or_else(|| WorkerTimeline {
                        // Revoked before waking: the whole call span was
                        // park time for this slot.
                        loop_start_us: now_us,
                        loop_end_us: now_us,
                        tasks: Vec::new(),
                        task_count: 0,
                        exec_ns: 0,
                        idle_ns: 0,
                        park_ns: parked,
                        steals: 0,
                    })
                })
                .collect()
        }
    };
    DispatchReport {
        timelines,
        work_ns: work_ns.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_deque_hands_out_every_index_once() {
        let d = RangeDeque::new(3, 11);
        let mut got = Vec::new();
        got.push(d.pop_front().unwrap());
        got.push(d.steal_back().unwrap());
        while let Some(i) = d.pop_front() {
            got.push(i);
        }
        assert!(d.steal_back().is_none());
        got.sort_unstable();
        assert_eq!(got, (3..11).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_arena_survives_across_uses() {
        let a = with_scratch(|v: &mut Vec<u32>| {
            v.push(1);
            v.len()
        });
        let b = with_scratch(|v: &mut Vec<u32>| {
            v.push(2);
            v.len()
        });
        assert_eq!((a, b), (1, 2), "scratch must persist on this thread");
        with_scratch(|v: &mut Vec<u32>| v.clear());
    }

    #[test]
    fn estimates_adapt_toward_samples() {
        prime_task_estimate("pool.test.est", 1_000);
        for _ in 0..64 {
            update_task_estimate("pool.test.est", 9_000);
        }
        let e = task_estimate("pool.test.est").unwrap();
        assert!(e > 6_000, "EWMA should approach the sample, got {e}");
    }

    #[test]
    fn width_gates_on_tasks_threads_and_cutoff() {
        with_dispatch_policy(DispatchPolicy::always_parallel(), || {
            assert_eq!(parallel_width("pool.test.w", 1, 100), 1);
            assert_eq!(parallel_width("pool.test.w", 8, 1), 1);
            assert_eq!(parallel_width("pool.test.w", 8, 100), 8);
            assert_eq!(parallel_width("pool.test.w", 8, 3), 3);
        });
        let policy = DispatchPolicy {
            seq_cutoff_ns: 10_000,
            respect_cores: false,
        };
        with_dispatch_policy(policy, || {
            prime_task_estimate("pool.test.cut", 1_000);
            // 9 tasks x 1000 ns = 9000 < 10000 -> inline.
            assert_eq!(parallel_width("pool.test.cut", 8, 9), 1);
            // Exactly at the cutoff -> dispatch.
            assert_eq!(parallel_width("pool.test.cut", 8, 10), 8);
            // Unknown estimate -> optimistic dispatch.
            assert_eq!(parallel_width("pool.test.unknown", 8, 2), 2);
        });
    }
}
