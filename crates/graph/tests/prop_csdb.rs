//! Property-based tests of the CSDB ↔ CSR equivalence that the parallel
//! SpMM and serving paths lean on: both formats stream the **same**
//! `(cols, vals)` row sequences through the shared
//! `omega_linalg::kernels::sparse_dot` kernel, so their SpMV results must
//! be bit-identical — not merely close — and a format-independent charging
//! convention must produce byte-identical [`AccessSummary`] totals.

use omega_graph::{Csdb, Csr, RmatConfig, SbmConfig};
use omega_hetmem::{
    AccessOp, AccessPattern, AccessSummary, DeviceKind, MemSystem, Placement, Topology,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A deterministic dense input in the given space.
fn dense_input(n: u32, salt: u64) -> Vec<f32> {
    (0..n as u64)
        .map(|i| (((i * 37 + salt * 11) % 101) as f32 - 50.0) * 0.31)
        .collect()
}

/// Charge one SpMV's traffic under the SpMM kernel's format-independent
/// convention: 8 bytes of metadata per row plus 8 per nonzero streamed
/// sequentially, one random dense gather per nonzero, one sequential
/// result write — a function of `(rows, nnz)` only, never of the format's
/// index layout.
fn charged_spmv_summary(sys: &MemSystem, rows: u64, nnz: u64) -> AccessSummary {
    let pm = Placement::node(0, DeviceKind::Pm);
    let dram = Placement::node(0, DeviceKind::Dram);
    let mut ctx = sys.thread_ctx_on(0);
    ctx.charge_block(
        pm,
        AccessOp::Read,
        AccessPattern::Seq,
        rows * 8 + nnz * 8,
        2,
    );
    if nnz > 0 {
        ctx.charge_block(dram, AccessOp::Read, AccessPattern::Rand, nnz * 4, nnz);
    }
    ctx.charge_block(dram, AccessOp::Write, AccessPattern::Seq, rows * 4, 1);
    AccessSummary::from_counters(ctx.counters())
}

fn assert_bit_identical(a: &[f32], b: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "row {} diverged: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

/// The shared body: CSDB SpMV vs. its CSR views, plus the charged-traffic
/// equivalence, for one source matrix.
fn check_csdb_csr_equivalence(csr: &Csr) -> Result<(), TestCaseError> {
    let csdb = Csdb::from_csr(csr).unwrap();
    prop_assert_eq!(csdb.nnz(), csr.nnz());

    // Permuted space: CSDB rows and its to_csr() rows are the very same
    // (cols, vals) sequences, so SpMV is bit-identical.
    let x_perm = dense_input(csdb.cols(), 3);
    let via_csdb = csdb.spmv(&x_perm).unwrap();
    let via_view = csdb.to_csr().spmv(&x_perm).unwrap();
    assert_bit_identical(&via_csdb, &via_view)?;

    // Original space: reconstructing original ids re-sorts each row
    // column-ascending — exactly the source CSR's order — so the
    // round-trip SpMV is bit-identical to the source too.
    let x_orig = dense_input(csr.cols(), 7);
    let via_source = csr.spmv(&x_orig).unwrap();
    let via_roundtrip = csdb.to_csr_original().spmv(&x_orig).unwrap();
    assert_bit_identical(&via_source, &via_roundtrip)?;

    // Charged traffic is a function of (rows, nnz) only: both formats
    // produce byte-identical AccessSummary totals.
    let sys = MemSystem::new(Topology::paper_machine_scaled(1 << 22));
    let csr_side = charged_spmv_summary(&sys, csr.rows() as u64, csr.nnz() as u64);
    let csdb_side = charged_spmv_summary(&sys, csdb.rows() as u64, csdb.nnz() as u64);
    prop_assert_eq!(csr_side.total_bytes, csdb_side.total_bytes);
    prop_assert_eq!(csr_side.total_accesses, csdb_side.total_accesses);
    prop_assert_eq!(csr_side.pm_bytes, csdb_side.pm_bytes);
    prop_assert_eq!(csr_side.dram_bytes, csdb_side.dram_bytes);
    prop_assert_eq!(csr_side.random_bytes, csdb_side.random_bytes);
    prop_assert_eq!(csr_side.read_bytes, csdb_side.read_bytes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random scale-free (R-MAT) graphs: CSDB and CSR SpMV agree to the
    /// bit in both id spaces, and charged byte totals match exactly.
    #[test]
    fn rmat_csdb_csr_bit_identical(
        n in 8u32..400,
        e in 8u64..2_000,
        seed in 0u64..500,
    ) {
        let csr = RmatConfig::social(n, e, seed).generate_csr().unwrap();
        check_csdb_csr_equivalence(&csr)?;
    }

    /// Random community (SBM) graphs: same equivalence on a flat degree
    /// distribution, where CSDB's degree blocks collapse differently.
    #[test]
    fn sbm_csdb_csr_bit_identical(
        n in 8u32..300,
        k in 1u32..6,
        seed in 0u64..200,
    ) {
        let cfg = SbmConfig {
            nodes: n,
            communities: k.min(n),
            deg_in: 5.0,
            deg_out: 1.5,
            seed,
        };
        let csr = cfg.generate_csr().unwrap();
        check_csdb_csr_equivalence(&csr)?;
    }
}
