//! Property-based tests of graph IO, construction and generators.

use omega_graph::algo::{bfs_distances, connected_components};
use omega_graph::{EdgeList, GraphBuilder, RmatConfig, SbmConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge-list text round-trips arbitrary weighted edges.
    #[test]
    fn edgelist_text_roundtrip(
        edges in proptest::collection::vec((0u32..10_000, 0u32..10_000, 1u32..1_000), 0..50)
    ) {
        let list: EdgeList = edges
            .iter()
            .map(|&(u, v, w)| (u, v, w as f32 * 0.5))
            .collect();
        let back = EdgeList::parse(&list.to_text()).unwrap();
        prop_assert_eq!(back, list);
    }

    /// Built CSR matrices are always symmetric, sorted, loop-free and
    /// within the declared node bounds.
    #[test]
    fn builder_invariants(
        n in 2u32..50,
        edges in proptest::collection::vec((0u32..50, 0u32..50), 1..100)
    ) {
        let mut b = GraphBuilder::new(n);
        let mut added = false;
        for (u, v) in edges {
            if u < n && v < n && u != v {
                b.add_edge(u, v, 1.0).unwrap();
                added = true;
            }
        }
        if !added {
            b.add_edge(0, 1, 1.0).unwrap();
        }
        let g = b.build_csr().unwrap();
        prop_assert!(g.is_symmetric());
        for r in 0..g.rows() {
            let (cols, _) = g.row(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} unsorted/dup");
            prop_assert!(cols.iter().all(|&c| c != r), "self-loop in row {r}");
        }
    }

    /// R-MAT output respects its configuration for any valid node count.
    #[test]
    fn rmat_respects_bounds(n in 2u32..5_000, e in 1u64..5_000, seed in 0u64..1_000) {
        let list = RmatConfig::social(n, e, seed).generate_edges();
        prop_assert_eq!(list.len() as u64, e);
        for (u, v, w) in list.iter() {
            prop_assert!(u < n && v < n && u != v);
            prop_assert_eq!(w, 1.0);
        }
    }

    /// SBM labels partition the nodes and the generator never panics.
    #[test]
    fn sbm_labels_partition(n in 8u32..200, k in 1u32..8, seed in 0u64..100) {
        let cfg = SbmConfig {
            nodes: n,
            communities: k.min(n),
            deg_in: 4.0,
            deg_out: 1.0,
            seed,
        };
        let labels = cfg.labels();
        prop_assert_eq!(labels.len() as u32, n);
        prop_assert!(labels.iter().all(|&l| l < cfg.communities));
        let g = cfg.generate_csr().unwrap();
        prop_assert!(g.is_symmetric());
    }

    /// BFS distances respect the triangle property along edges and label
    /// exactly the source's component.
    #[test]
    fn bfs_consistency(n in 3u32..60, edges in proptest::collection::vec((0u32..60, 0u32..60), 2..80)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u < n && v < n && u != v {
                b.add_edge(u, v, 1.0).unwrap();
            }
        }
        b.add_edge(0, 1 % n, 1.0).ok();
        let g = b.build_csr().unwrap();
        let dist = bfs_distances(&g, 0);
        let (labels, _) = connected_components(&g);
        for u in 0..g.rows() {
            let reach = dist[u as usize] != u32::MAX;
            let same_comp = labels[u as usize] == labels[0];
            prop_assert_eq!(reach, same_comp, "reachability disagrees at {}", u);
            for &v in g.row(u).0 {
                let (du, dv) = (dist[u as usize], dist[v as usize]);
                if du != u32::MAX {
                    prop_assert!(dv != u32::MAX && dv <= du + 1 && du <= dv + 1);
                }
            }
        }
    }
}
