//! Conversions and permutation utilities between CSR and CSDB spaces.

use crate::csdb::Csdb;
use crate::csr::Csr;
use crate::Result;

/// Build a CSDB from CSR (thin alias around [`Csdb::from_csr`], kept for
/// discoverability alongside the other conversion directions).
pub fn csr_to_csdb(csr: &Csr) -> Result<Csdb> {
    Csdb::from_csr(csr)
}

/// Recover the CSR in the original id space.
pub fn csdb_to_csr(csdb: &Csdb) -> Csr {
    csdb.to_csr_original()
}

/// Permute a dense vector from original id space into a CSDB's permuted
/// space (`out[new] = x[perm[new]]`).
pub fn permute_vec<T: Copy>(csdb: &Csdb, x: &[T]) -> Vec<T> {
    csdb.perm().iter().map(|&old| x[old as usize]).collect()
}

/// Un-permute a dense vector from CSDB space back to original ids.
pub fn unpermute_vec<T: Copy + Default>(csdb: &Csdb, x: &[T]) -> Vec<T> {
    let mut out = vec![T::default(); x.len()];
    for (new_id, &old_id) in csdb.perm().iter().enumerate() {
        out[old_id as usize] = x[new_id];
    }
    out
}

/// Un-permute the rows of a row-major matrix with `d` columns (used to map
/// embeddings computed in CSDB space back to original node ids).
pub fn unpermute_rows_row_major(csdb: &Csdb, data: &[f32], d: usize) -> Vec<f32> {
    assert_eq!(data.len(), csdb.rows() as usize * d);
    let mut out = vec![0f32; data.len()];
    for (new_id, &old_id) in csdb.perm().iter().enumerate() {
        let src = &data[new_id * d..(new_id + 1) * d];
        out[old_id as usize * d..(old_id as usize + 1) * d].copy_from_slice(src);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> Csr {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.build_csr().unwrap()
    }

    #[test]
    fn roundtrip_csr_csdb_csr() {
        let csr = path4();
        let csdb = csr_to_csdb(&csr).unwrap();
        assert_eq!(csdb_to_csr(&csdb), csr);
    }

    #[test]
    fn vec_permutation_roundtrips() {
        let csdb = csr_to_csdb(&path4()).unwrap();
        let x = vec![10i32, 20, 30, 40];
        let px = permute_vec(&csdb, &x);
        assert_eq!(unpermute_vec(&csdb, &px), x);
        // The permutation actually reorders (path: middle nodes have deg 2).
        assert_ne!(px, x);
    }

    #[test]
    fn row_major_unpermute() {
        let csdb = csr_to_csdb(&path4()).unwrap();
        let d = 2;
        // Row i of the permuted matrix holds the embedding of original node
        // perm[i]; build it explicitly and check recovery.
        let mut permuted = vec![0f32; 4 * d];
        for new_id in 0..4usize {
            let old = csdb.perm()[new_id] as f32;
            permuted[new_id * d] = old;
            permuted[new_id * d + 1] = old * 10.0;
        }
        let original = unpermute_rows_row_major(&csdb, &permuted, d);
        for node in 0..4usize {
            assert_eq!(original[node * d], node as f32);
            assert_eq!(original[node * d + 1], node as f32 * 10.0);
        }
    }
}
