//! Graph statistics: degree distributions, Shannon entropy, and the
//! workload scatter factor — the quantities EaTA's analysis (§III-B) is
//! built on.

use crate::csr::Csr;
use std::collections::BTreeMap;

/// Degree histogram: degree → node count, sorted by degree.
pub fn degree_histogram(csr: &Csr) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    for r in 0..csr.rows() {
        *hist.entry(csr.degree(r)).or_insert(0u64) += 1;
    }
    hist
}

/// Number of distinct degrees (`|Degree|`, the size driver of CSDB).
pub fn distinct_degrees(csr: &Csr) -> usize {
    degree_histogram(csr).len()
}

/// Average degree.
pub fn avg_degree(csr: &Csr) -> f64 {
    if csr.rows() == 0 {
        return 0.0;
    }
    csr.nnz() as f64 / csr.rows() as f64
}

/// Shannon entropy (nats) of a workload: the degree distribution of a row
/// range, Eq. 3 of the paper:
/// `H = Σ_j −(|Row_j| / W) · ln(|Row_j| / W)` where `W = Σ_j |Row_j|`.
///
/// Empty rows contribute nothing (lim x→0 of −x ln x = 0).
pub fn workload_entropy(row_nnz: &[u64]) -> f64 {
    let w: u64 = row_nnz.iter().sum();
    if w == 0 {
        return 0.0;
    }
    let w = w as f64;
    row_nnz
        .iter()
        .filter(|&&r| r > 0)
        .map(|&r| {
            let p = r as f64 / w;
            -p * p.ln()
        })
        .sum()
}

/// Entropy normalised to [0, 1]: `Z(H) = H / ln |V|` (§III-B, Eq. 5).
pub fn normalized_entropy(h: f64, total_cols: u32) -> f64 {
    if total_cols <= 1 {
        return 0.0;
    }
    (h / (total_cols as f64).ln()).clamp(0.0, 1.0)
}

/// The workload inherent scatter factor `W_sca` (§III-B): the average
/// number of non-zero indices per row in the workload, divided by the total
/// number of columns `|V|`. Smaller values mean the dense-matrix rows
/// fetched by `get_dense_nnz` are more scattered.
pub fn scatter_factor(row_nnz: &[u64], total_cols: u32) -> f64 {
    if row_nnz.is_empty() || total_cols == 0 {
        return 0.0;
    }
    let w: u64 = row_nnz.iter().sum();
    let avg_per_row = w as f64 / row_nnz.len() as f64;
    avg_per_row / total_cols as f64
}

/// Maximum-likelihood estimate of the power-law exponent for degrees ≥
/// `d_min` (Clauset et al.): `α = 1 + n / Σ ln(d_i / (d_min − ½))`.
/// Returns `None` if no nodes reach `d_min`.
pub fn power_law_alpha(csr: &Csr, d_min: u64) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut n = 0u64;
    let mut log_sum = 0f64;
    for r in 0..csr.rows() {
        let d = csr.degree(r);
        if d >= d_min {
            n += 1;
            log_sum += (d as f64 / (d_min as f64 - 0.5)).ln();
        }
    }
    (n > 0 && log_sum > 0.0).then(|| 1.0 + n as f64 / log_sum)
}

/// Full per-graph report used by the Table I harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: u32,
    /// Undirected edge count (stored nnz / 2 for symmetric matrices).
    pub edges: u64,
    pub max_degree: u64,
    pub avg_degree: f64,
    pub distinct_degrees: usize,
    pub entropy: f64,
    pub normalized_entropy: f64,
}

impl GraphStats {
    pub fn of(csr: &Csr) -> GraphStats {
        let degrees = csr.degrees();
        let h = workload_entropy(&degrees);
        GraphStats {
            nodes: csr.rows(),
            edges: csr.nnz() as u64 / 2,
            max_degree: csr.max_degree(),
            avg_degree: avg_degree(csr),
            distinct_degrees: distinct_degrees(csr),
            entropy: h,
            normalized_entropy: normalized_entropy(h, csr.rows()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::rmat::RmatConfig;

    fn star(leaves: u32) -> Csr {
        let mut b = GraphBuilder::new(leaves + 1);
        for leaf in 1..=leaves {
            b.add_edge(0, leaf, 1.0).unwrap();
        }
        b.build_csr().unwrap()
    }

    #[test]
    fn histogram_and_distinct() {
        let g = star(10);
        let h = degree_histogram(&g);
        assert_eq!(h[&10], 1);
        assert_eq!(h[&1], 10);
        assert_eq!(distinct_degrees(&g), 2);
        assert!((avg_degree(&g) - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_rows_maximise_entropy() {
        // k equal rows -> H = ln k.
        let rows = vec![5u64; 8];
        assert!((workload_entropy(&rows) - (8f64).ln()).abs() < 1e-12);
        // One dominant row -> entropy near 0.
        let skewed = vec![1000u64, 1, 1];
        assert!(workload_entropy(&skewed) < 0.1);
        // Empty workload.
        assert_eq!(workload_entropy(&[]), 0.0);
        assert_eq!(workload_entropy(&[0, 0]), 0.0);
    }

    #[test]
    fn normalized_entropy_in_unit_interval() {
        let rows = vec![5u64; 8];
        let h = workload_entropy(&rows);
        let z = normalized_entropy(h, 8);
        assert!((z - 1.0).abs() < 1e-12);
        assert_eq!(normalized_entropy(h, 1), 0.0);
        assert!(normalized_entropy(100.0, 8) <= 1.0); // clamped
    }

    #[test]
    fn scatter_factor_definition() {
        // 4 rows, 20 nnz total, 100 columns: avg 5 per row / 100 = 0.05.
        assert!((scatter_factor(&[5, 5, 5, 5], 100) - 0.05).abs() < 1e-12);
        assert_eq!(scatter_factor(&[], 100), 0.0);
        assert_eq!(scatter_factor(&[5], 0), 0.0);
    }

    #[test]
    fn power_law_fit_on_rmat() {
        let g = RmatConfig::social(1 << 12, 60_000, 3)
            .generate_csr()
            .unwrap();
        let alpha = power_law_alpha(&g, 4).expect("enough high-degree nodes");
        // Social graphs live around alpha in [1.5, 3.5].
        assert!((1.2..4.5).contains(&alpha), "alpha={alpha}");
        // Star graph with no node over threshold.
        let tiny = star(2);
        assert!(power_law_alpha(&tiny, 50).is_none());
    }

    #[test]
    fn graph_stats_report() {
        let g = star(99);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 100);
        assert_eq!(s.edges, 99);
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.distinct_degrees, 2);
        assert!(s.entropy > 0.0);
        assert!(s.normalized_entropy > 0.0 && s.normalized_entropy < 1.0);
    }
}
