//! Scaled-down synthetic twins of the paper's six evaluation graphs
//! (Table I).
//!
//! The originals (SNAP social networks up to 3.61 B edges) are too large to
//! redistribute and gated behind the paper's testbed capacity; what drives
//! every OMeGa mechanism — EaTA's entropy, WoFP's hit rates, NaDP's traffic
//! split — is the *degree distribution shape* and the node/edge ratio, both
//! of which a skewed R-MAT reproduces. Each twin divides the paper's node
//! and edge counts by a configurable scale factor (default 1000) while the
//! simulated machine's capacities are scaled by the same policy, so
//! capacity-limited outcomes (DRAM OOM on TW-2010/FR) reproduce.

use crate::csr::Csr;
use crate::rmat::RmatConfig;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The six graphs of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// soc-Pokec.
    Pk,
    /// soc-LiveJournal.
    Lj,
    /// com-Orkut.
    Or,
    /// Twitter (11.3 M nodes).
    Tw,
    /// Twitter-2010 (billion-edge).
    Tw2010,
    /// com-Friendster (billion-edge).
    Fr,
}

/// Table I row: the original graph's published statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    pub name: &'static str,
    pub nodes: u64,
    pub edges: u64,
    pub max_degree: u64,
}

impl Dataset {
    /// All datasets in Table I order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Pk,
        Dataset::Lj,
        Dataset::Or,
        Dataset::Tw,
        Dataset::Tw2010,
        Dataset::Fr,
    ];

    /// The five smaller graphs used by figures that exclude FR.
    pub const SMALL_FIVE: [Dataset; 5] = [
        Dataset::Pk,
        Dataset::Lj,
        Dataset::Or,
        Dataset::Tw,
        Dataset::Tw2010,
    ];

    /// Short label used in tables.
    pub const fn label(self) -> &'static str {
        match self {
            Dataset::Pk => "PK",
            Dataset::Lj => "LJ",
            Dataset::Or => "OR",
            Dataset::Tw => "TW",
            Dataset::Tw2010 => "TW-2010",
            Dataset::Fr => "FR",
        }
    }

    /// Paper Table I statistics of the original graph.
    pub const fn paper_stats(self) -> DatasetStats {
        match self {
            Dataset::Pk => DatasetStats {
                name: "soc-Pokec",
                nodes: 1_630_000,
                edges: 44_600_000,
                max_degree: 803,
            },
            Dataset::Lj => DatasetStats {
                name: "soc-LiveJournal",
                nodes: 4_850_000,
                edges: 85_700_000,
                max_degree: 1_641,
            },
            Dataset::Or => DatasetStats {
                name: "com-Orkut",
                nodes: 3_070_000,
                edges: 234_470_000,
                max_degree: 2_863,
            },
            Dataset::Tw => DatasetStats {
                name: "Twitter",
                nodes: 11_320_000,
                edges: 127_110_000,
                max_degree: 5_373,
            },
            Dataset::Tw2010 => DatasetStats {
                name: "Twitter-2010",
                nodes: 41_650_000,
                edges: 2_410_000_000,
                max_degree: 15_760,
            },
            Dataset::Fr => DatasetStats {
                name: "com-Friendster",
                nodes: 65_610_000,
                edges: 3_610_000_000,
                max_degree: 3_148,
            },
        }
    }

    /// Whether the paper reports DRAM-only systems failing on this graph
    /// (the billion-edge pair).
    pub const fn is_billion_scale(self) -> bool {
        matches!(self, Dataset::Tw2010 | Dataset::Fr)
    }

    /// Deterministic per-dataset seed so every harness sees the same twin.
    const fn seed(self) -> u64 {
        match self {
            Dataset::Pk => 0x9e3779b97f4a7c15,
            Dataset::Lj => 0xbf58476d1ce4e5b9,
            Dataset::Or => 0x94d049bb133111eb,
            Dataset::Tw => 0x2545f4914f6cdd1d,
            Dataset::Tw2010 => 0xd6e8feb86659fd93,
            Dataset::Fr => 0xa0761d6478bd642f,
        }
    }

    /// The R-MAT configuration of the twin at scale `scale` (paper counts
    /// divided by `scale`).
    pub fn twin_config(self, scale: u64) -> RmatConfig {
        let stats = self.paper_stats();
        let nodes = (stats.nodes / scale).max(64) as u32;
        let edges = (stats.edges / scale).max(256);
        RmatConfig::social(nodes, edges, self.seed())
    }

    /// Generate the twin graph at scale `scale`.
    pub fn load_scaled(self, scale: u64) -> Result<Csr> {
        self.twin_config(scale).generate_csr()
    }

    /// Generate the twin at the default 1:1000 scale.
    pub fn load(self) -> Result<Csr> {
        self.load_scaled(default_scale())
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The default twin scale (1:1000), overridable via the `OMEGA_SCALE`
/// environment variable for quicker smoke runs or heavier sweeps.
pub fn default_scale() -> u64 {
    std::env::var("OMEGA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn table1_order_and_labels() {
        let labels: Vec<_> = Dataset::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels, ["PK", "LJ", "OR", "TW", "TW-2010", "FR"]);
        assert_eq!(Dataset::Pk.paper_stats().name, "soc-Pokec");
    }

    #[test]
    fn billion_scale_flags() {
        assert!(Dataset::Tw2010.is_billion_scale());
        assert!(Dataset::Fr.is_billion_scale());
        assert!(!Dataset::Pk.is_billion_scale());
    }

    #[test]
    fn twin_counts_scale_with_paper() {
        let cfg = Dataset::Pk.twin_config(1000);
        assert_eq!(cfg.nodes, 1_630);
        assert_eq!(cfg.edges, 44_600);
        let cfg = Dataset::Fr.twin_config(1000);
        assert_eq!(cfg.nodes, 65_610);
        assert_eq!(cfg.edges, 3_610_000);
    }

    #[test]
    fn twins_are_deterministic_and_distinct() {
        let a = Dataset::Pk.load_scaled(4000).unwrap();
        let b = Dataset::Pk.load_scaled(4000).unwrap();
        assert_eq!(a, b);
        let c = Dataset::Lj.load_scaled(4000).unwrap();
        assert_ne!(a.nnz(), c.nnz());
    }

    #[test]
    fn twin_preserves_skew_shape() {
        let g = Dataset::Pk.load_scaled(1000).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 1_630);
        // Heavy-tailed: hub degree well above average.
        assert!(s.max_degree as f64 > s.avg_degree * 5.0);
        // Average degree roughly tracks the original (PK ~ 2*44.6M/1.63M = 54
        // directed nnz per node; R-MAT dedup loses some, so allow slack).
        assert!(s.avg_degree > 15.0, "avg={}", s.avg_degree);
    }

    #[test]
    fn scale_floor_prevents_degenerate_twins() {
        let cfg = Dataset::Pk.twin_config(u64::MAX);
        assert!(cfg.nodes >= 64);
        assert!(cfg.edges >= 256);
    }

    #[test]
    fn default_scale_is_1000_without_env() {
        // The test environment does not set OMEGA_SCALE.
        if std::env::var("OMEGA_SCALE").is_err() {
            assert_eq!(default_scale(), 1000);
        }
    }
}
