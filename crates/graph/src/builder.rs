//! Undirected graph construction from raw edges.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::{GraphError, Result};

/// Builds a clean, symmetric adjacency structure from raw edges:
/// symmetrises (each undirected edge stored in both directions), removes
/// self-loops, deduplicates parallel edges (summing their weights), and
/// sorts each adjacency list.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nodes: u32,
    edges: Vec<(u32, u32, f32)>,
    keep_self_loops: bool,
    sum_duplicates: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `nodes` vertices.
    pub fn new(nodes: u32) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::new(),
            keep_self_loops: false,
            sum_duplicates: true,
        }
    }

    /// Infer the node count from an edge list.
    pub fn from_edge_list(list: &EdgeList) -> Self {
        let mut b = GraphBuilder::new(list.max_node_plus_one());
        for (s, d, w) in list.iter() {
            b.edges.push((s, d, w));
        }
        b
    }

    /// Keep self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// When duplicates appear, sum their weights (default) or keep the first.
    pub fn sum_duplicates(mut self, sum: bool) -> Self {
        self.sum_duplicates = sum;
        self
    }

    /// Add one undirected edge.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f32) -> Result<()> {
        if u >= self.nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                nodes: self.nodes,
            });
        }
        if v >= self.nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                nodes: self.nodes,
            });
        }
        self.edges.push((u, v, w));
        Ok(())
    }

    /// Number of raw (pre-clean) edges added.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Build the symmetric CSR adjacency matrix.
    pub fn build_csr(self) -> Result<Csr> {
        let n = self.nodes as usize;
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Symmetrise: store (u,v) and (v,u); drop self-loops unless kept.
        let mut directed: Vec<(u32, u32, f32)> = Vec::with_capacity(self.edges.len() * 2);
        for (u, v, w) in self.edges {
            if u == v {
                if self.keep_self_loops {
                    directed.push((u, v, w));
                }
                continue;
            }
            directed.push((u, v, w));
            directed.push((v, u, w));
        }

        // Sort by (row, col) then dedup.
        directed.sort_unstable_by_key(|a| (a.0, a.1));
        let mut dedup: Vec<(u32, u32, f32)> = Vec::with_capacity(directed.len());
        for (u, v, w) in directed {
            match dedup.last_mut() {
                Some(last) if last.0 == u && last.1 == v => {
                    if self.sum_duplicates {
                        last.2 += w;
                    }
                }
                _ => dedup.push((u, v, w)),
            }
        }

        // Count rows and fill.
        let mut row_ptr = vec![0u64; n + 1];
        for &(u, _, _) in &dedup {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = dedup.len();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut cursor = row_ptr.clone();
        for (u, v, w) in dedup {
            let at = cursor[u as usize] as usize;
            col_idx[at] = v;
            values[at] = w;
            cursor[u as usize] += 1;
        }

        Csr::from_parts(self.nodes, self.nodes, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 0, 1.0).unwrap();
        b.build_csr().unwrap()
    }

    #[test]
    fn symmetrises_and_sorts() {
        let g = triangle();
        assert_eq!(g.nnz(), 6);
        assert_eq!(g.row(0).0, &[1, 2]);
        assert_eq!(g.row(1).0, &[0, 2]);
        assert_eq!(g.row(2).0, &[0, 1]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5.0).unwrap();
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build_csr().unwrap();
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.row(0).0, &[1]);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new(2).keep_self_loops(true);
        b.add_edge(0, 0, 5.0).unwrap();
        let g = b.build_csr().unwrap();
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.row(0), (&[0u32][..], &[5.0f32][..]));
    }

    #[test]
    fn duplicate_edges_sum_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 0, 2.0).unwrap(); // same undirected edge
        let g = b.build_csr().unwrap();
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.row(0).1, &[3.0]);
        assert_eq!(g.row(1).1, &[3.0]);
    }

    #[test]
    fn duplicate_edges_keep_first_when_disabled() {
        let mut b = GraphBuilder::new(2).sum_duplicates(false);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 1, 9.0).unwrap();
        let g = b.build_csr().unwrap();
        assert_eq!(g.row(0).1, &[1.0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2, 1.0),
            Err(GraphError::NodeOutOfRange { node: 2, nodes: 2 })
        ));
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build_csr().unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.row(3).0.len(), 0);
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            GraphBuilder::new(0).build_csr(),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn from_edge_list_infers_nodes() {
        let list = EdgeList::parse("0 5\n5 3\n").unwrap();
        let g = GraphBuilder::from_edge_list(&list).build_csr().unwrap();
        assert_eq!(g.rows(), 6);
        assert_eq!(g.nnz(), 4);
    }
}
