//! Simulated cost of the *graph reading procedure*: parsing the edge list
//! from SSD and materialising an in-memory format — the quantity Fig. 19(a)
//! compares between CSR and CSDB (and part of every end-to-end time in
//! Fig. 12, which includes graph reading).
//!
//! Model: the text edge list streams from SSD; parsing costs fixed CPU work
//! per stored non-zero; format construction differs — a conventional CSR
//! loader groups edges with a comparison sort (`log₂ nnz` ops per nnz),
//! while CSDB's degree blocks come from counting passes (O(1) per nnz plus
//! O(1) per node); finally the structure's bytes stream to the operand
//! device. The counting-sort advantage is what makes CSDB's reading ~1.35×
//! faster in the paper.

use crate::csdb::Csdb;
use crate::csr::Csr;
use omega_hetmem::{
    AccessClass, AccessOp, AccessPattern, BandwidthModel, DeviceKind, Locality, SimDuration,
};

/// Which in-memory format the loader builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    Csr,
    Csdb,
}

impl GraphFormat {
    pub const fn label(self) -> &'static str {
        match self {
            GraphFormat::Csr => "CSR",
            GraphFormat::Csdb => "CSDB",
        }
    }
}

/// Bytes of one edge-list text line (`u\td\n` with ~7-digit ids).
const TEXT_BYTES_PER_EDGE: u64 = 16;
/// CPU ops to tokenise and convert one stored nnz.
const PARSE_OPS_PER_NNZ: u64 = 12;
/// CPU ops per nnz for CSDB's counting passes (degree count + bucket fill).
const CSDB_BUILD_OPS_PER_NNZ: u64 = 6;
/// CPU ops per node for CSDB's degree-block index construction.
const CSDB_BUILD_OPS_PER_NODE: u64 = 2;

/// Simulated time to read a graph of `nodes` / `nnz` stored non-zeros into
/// `format`, with the structure written to `device` (node 0, local).
pub fn read_time(
    format: GraphFormat,
    nodes: u64,
    nnz: u64,
    structure_bytes: u64,
    model: &BandwidthModel,
    device: DeviceKind,
) -> SimDuration {
    const GIB: f64 = (1u64 << 30) as f64;
    // SSD stream of the text file (each undirected edge = one line; stored
    // nnz is both directions).
    let file_bytes = (nnz / 2).max(1) * TEXT_BYTES_PER_EDGE;
    let ssd_bw = model
        .class(AccessClass::new(
            DeviceKind::Ssd,
            Locality::Local,
            AccessOp::Read,
            AccessPattern::Seq,
        ))
        .peak_gib_s;
    let io_s = file_bytes as f64 / (ssd_bw * GIB);

    // CPU: parse + build.
    let build_ops = match format {
        GraphFormat::Csr => {
            // Comparison sort to group by (row, col).
            let log = (64 - nnz.max(2).leading_zeros() as u64).max(1);
            nnz * log
        }
        GraphFormat::Csdb => nnz * CSDB_BUILD_OPS_PER_NNZ + nodes * CSDB_BUILD_OPS_PER_NODE,
    };
    let cpu_s = (nnz * PARSE_OPS_PER_NNZ + build_ops) as f64 / model.cpu_ops_per_sec;

    // Structure write-out to the operand device.
    let w_bw = model
        .class(AccessClass::new(
            device,
            Locality::Local,
            AccessOp::Write,
            AccessPattern::Seq,
        ))
        .peak_gib_s;
    let write_s = structure_bytes as f64 / (w_bw * GIB);

    SimDuration::from_secs_f64(io_s + cpu_s + write_s)
}

/// Reading time for a concrete CSR.
pub fn csr_read_time(csr: &Csr, model: &BandwidthModel, device: DeviceKind) -> SimDuration {
    read_time(
        GraphFormat::Csr,
        csr.rows() as u64,
        csr.nnz() as u64,
        csr.size_bytes(),
        model,
        device,
    )
}

/// Reading time for a concrete CSDB.
pub fn csdb_read_time(csdb: &Csdb, model: &BandwidthModel, device: DeviceKind) -> SimDuration {
    read_time(
        GraphFormat::Csdb,
        csdb.rows() as u64,
        csdb.nnz() as u64,
        csdb.size_bytes(),
        model,
        device,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatConfig;

    #[test]
    fn csdb_reads_faster_than_csr() {
        let model = BandwidthModel::paper_machine();
        let csr = RmatConfig::social(1 << 12, 60_000, 4)
            .generate_csr()
            .unwrap();
        let csdb = Csdb::from_csr(&csr).unwrap();
        let t_csr = csr_read_time(&csr, &model, DeviceKind::Pm);
        let t_csdb = csdb_read_time(&csdb, &model, DeviceKind::Pm);
        let speedup = t_csr.ratio(t_csdb);
        // Paper: ~1.35x. Accept the same shape (clearly faster, < 2x).
        assert!(
            speedup > 1.15 && speedup < 2.0,
            "CSDB read speedup {speedup} out of the expected band"
        );
    }

    #[test]
    fn read_time_scales_with_size() {
        let model = BandwidthModel::paper_machine();
        let small = read_time(
            GraphFormat::Csr,
            1_000,
            10_000,
            100_000,
            &model,
            DeviceKind::Pm,
        );
        let large = read_time(
            GraphFormat::Csr,
            10_000,
            100_000,
            1_000_000,
            &model,
            DeviceKind::Pm,
        );
        assert!(large > small * 5);
    }

    #[test]
    fn dram_write_out_beats_pm() {
        let model = BandwidthModel::paper_machine();
        let pm = read_time(
            GraphFormat::Csdb,
            1_000,
            50_000,
            10_000_000,
            &model,
            DeviceKind::Pm,
        );
        let dram = read_time(
            GraphFormat::Csdb,
            1_000,
            50_000,
            10_000_000,
            &model,
            DeviceKind::Dram,
        );
        assert!(dram < pm);
    }
}
