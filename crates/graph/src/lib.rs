//! # omega-graph — graph substrate for the OMeGa reproduction
//!
//! Provides everything between raw edge data and the SpMM engine:
//!
//! * [`edgelist`] — whitespace-separated edge-list parsing/serialisation;
//! * [`builder`] — undirected graph construction (dedup, self-loop removal);
//! * [`csr`] — the standard Compressed Sparse Row baseline format;
//! * [`csdb`] — the paper's Compressed Sparse Degree-Block format (§III-A)
//!   with `Deg_list`/`Deg_ind` indices and matrix operators;
//! * [`convert`] — CSR ↔ CSDB conversions with the degree permutation;
//! * [`rmat`] — the seeded recursive-matrix generator used for the
//!   scalability study (Fig. 17(b));
//! * [`datasets`] — scaled-down synthetic twins of the paper's six
//!   real-world graphs (Table I);
//! * [`stats`] — degree distributions, workload entropy and scatter factors.
//!
//! Node ids are `u32`; edge weights (`nnz` values) are `f32`, matching the
//! paper's initial unit weights.

pub mod algo;
pub mod builder;
pub mod convert;
pub mod csdb;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod read_cost;
pub mod rmat;
pub mod sbm;
pub mod stats;

pub use builder::GraphBuilder;
pub use csdb::Csdb;
pub use csr::Csr;
pub use datasets::{Dataset, DatasetStats};
pub use edgelist::EdgeList;
pub use rmat::RmatConfig;
pub use sbm::SbmConfig;

/// Errors from graph construction and IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A line in an edge list could not be parsed.
    Parse { line: usize, content: String },
    /// An edge referenced a node id ≥ the declared node count.
    NodeOutOfRange { node: u32, nodes: u32 },
    /// Operation requires matching dimensions.
    DimensionMismatch { left: (u32, u32), right: (u32, u32) },
    /// The structure is empty where a non-empty graph is required.
    EmptyGraph,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node id {node} out of range (|V| = {nodes})")
            }
            GraphError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left:?} vs {right:?}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
