//! Edge-list parsing and serialisation.
//!
//! The SNAP datasets the paper uses ship as whitespace-separated
//! `src dst [weight]` text files with `#` comment lines; this module reads
//! and writes that format.

use crate::{GraphError, Result};
use bytes::{BufMut, BytesMut};
use std::io::{BufReader, Read, Write};

/// A raw list of (possibly weighted, possibly directed) edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    pub edges: Vec<(u32, u32, f32)>,
}

impl EdgeList {
    pub fn new() -> Self {
        EdgeList::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        EdgeList {
            edges: Vec::with_capacity(cap),
        }
    }

    pub fn push(&mut self, src: u32, dst: u32, weight: f32) {
        self.edges.push((src, dst, weight));
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Largest node id referenced plus one, or 0 for an empty list.
    pub fn max_node_plus_one(&self) -> u32 {
        self.edges
            .iter()
            .map(|&(s, d, _)| s.max(d) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Parse `src dst [weight]` lines. Lines starting with `#` or `%` and
    /// blank lines are skipped. A missing weight defaults to `1.0` — the
    /// paper's initial assignment for `nnz_list`.
    pub fn parse(text: &str) -> Result<Self> {
        let mut list = EdgeList::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse_err = || GraphError::Parse {
                line: idx + 1,
                content: line.to_string(),
            };
            let src: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(parse_err)?;
            let dst: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(parse_err)?;
            let weight: f32 = match parts.next() {
                Some(t) => t.parse().map_err(|_| parse_err())?,
                None => 1.0,
            };
            if parts.next().is_some() {
                return Err(parse_err());
            }
            list.push(src, dst, weight);
        }
        Ok(list)
    }

    /// Parse from any reader (buffered internally).
    pub fn read_from<R: Read>(reader: R) -> Result<Self> {
        let mut buf = String::new();
        let mut reader = BufReader::new(reader);
        reader
            .read_to_string(&mut buf)
            .map_err(|_| GraphError::Parse {
                line: 0,
                content: "<io error>".into(),
            })?;
        Self::parse(&buf)
    }

    /// Serialise to the `src dst weight` text format. Unit weights are
    /// omitted to keep files in the common SNAP shape.
    pub fn to_text(&self) -> String {
        let mut out = BytesMut::with_capacity(self.edges.len() * 12);
        for &(s, d, w) in &self.edges {
            if w == 1.0 {
                out.put_slice(format!("{s}\t{d}\n").as_bytes());
            } else {
                out.put_slice(format!("{s}\t{d}\t{w}\n").as_bytes());
            }
        }
        String::from_utf8(out.to_vec()).expect("ascii output")
    }

    /// Write the text form to a writer.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(self.to_text().as_bytes())
    }

    /// Total bytes of the in-memory representation, used by the graph-read
    /// cost accounting (Fig. 19(a)).
    pub fn size_bytes(&self) -> u64 {
        (self.edges.len() * std::mem::size_of::<(u32, u32, f32)>()) as u64
    }

    /// Iterate over edges.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        self.edges.iter().copied()
    }
}

impl FromIterator<(u32, u32)> for EdgeList {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        EdgeList {
            edges: iter.into_iter().map(|(s, d)| (s, d, 1.0)).collect(),
        }
    }
}

impl FromIterator<(u32, u32, f32)> for EdgeList {
    fn from_iter<T: IntoIterator<Item = (u32, u32, f32)>>(iter: T) -> Self {
        EdgeList {
            edges: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_weights() {
        let text = "# SNAP header\n\n0 1\n1\t2\t0.5\n% matrix-market comment\n2 0\n";
        let list = EdgeList::parse(text).unwrap();
        assert_eq!(list.edges, vec![(0, 1, 1.0), (1, 2, 0.5), (2, 0, 1.0)]);
        assert_eq!(list.max_node_plus_one(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["a b", "1", "1 2 3 4", "1 2 x"] {
            let err = EdgeList::parse(bad).unwrap_err();
            assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{bad}");
        }
    }

    #[test]
    fn roundtrips_text() {
        let list: EdgeList = vec![(0u32, 1u32, 1.0f32), (1, 2, 2.5)]
            .into_iter()
            .collect();
        let text = list.to_text();
        assert_eq!(text, "0\t1\n1\t2\t2.5\n");
        assert_eq!(EdgeList::parse(&text).unwrap(), list);
    }

    #[test]
    fn read_write_io() {
        let list: EdgeList = vec![(3u32, 4u32)].into_iter().collect();
        let mut buf = Vec::new();
        list.write_to(&mut buf).unwrap();
        let back = EdgeList::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn empty_list() {
        let list = EdgeList::parse("").unwrap();
        assert!(list.is_empty());
        assert_eq!(list.max_node_plus_one(), 0);
        assert_eq!(list.size_bytes(), 0);
    }
}
