//! Compressed Sparse Row matrices — the baseline format the paper's CSDB is
//! compared against (Fig. 19(a)), and the working format of FusedMM-like
//! in-memory systems.

use crate::{GraphError, Result};

/// A CSR sparse matrix with `f32` values and `u32` column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: u32,
    cols: u32,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Assemble from raw parts, validating the invariants.
    pub fn from_parts(
        rows: u32,
        cols: u32,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows as usize + 1 {
            return Err(GraphError::DimensionMismatch {
                left: (rows, 0),
                right: (row_ptr.len() as u32, 0),
            });
        }
        if col_idx.len() != values.len() || *row_ptr.last().unwrap_or(&0) != col_idx.len() as u64 {
            return Err(GraphError::DimensionMismatch {
                left: (col_idx.len() as u32, 0),
                right: (values.len() as u32, 0),
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::DimensionMismatch {
                left: (rows, cols),
                right: (rows, cols),
            });
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c >= cols) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                nodes: cols,
            });
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from (row, col, value) triples (must reference valid indices).
    pub fn from_triples(rows: u32, cols: u32, mut triples: Vec<(u32, u32, f32)>) -> Result<Self> {
        triples.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0u64; rows as usize + 1];
        for &(r, c, _) in &triples {
            if r >= rows {
                return Err(GraphError::NodeOutOfRange {
                    node: r,
                    nodes: rows,
                });
            }
            if c >= cols {
                return Err(GraphError::NodeOutOfRange {
                    node: c,
                    nodes: cols,
                });
            }
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = triples.iter().map(|t| t.1).collect();
        let values = triples.iter().map(|t| t.2).collect();
        Csr::from_parts(rows, cols, row_ptr, col_idx, values)
    }

    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of row `r`.
    #[inline]
    pub fn degree(&self, r: u32) -> u64 {
        self.row_ptr[r as usize + 1] - self.row_ptr[r as usize]
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: u32) -> (&[u32], &[f32]) {
        let s = self.row_ptr[r as usize] as usize;
        let e = self.row_ptr[r as usize + 1] as usize;
        (&self.col_idx[s..e], &self.values[s..e])
    }

    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<u64> {
        (0..self.rows).map(|r| self.degree(r)).collect()
    }

    /// Maximum degree (0 for an all-empty matrix).
    pub fn max_degree(&self) -> u64 {
        (0..self.rows).map(|r| self.degree(r)).max().unwrap_or(0)
    }

    /// In-degrees (number of stored entries per column).
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.cols as usize];
        for &c in &self.col_idx {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0u64; self.cols as usize + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let at = cursor[c as usize] as usize;
                col_idx[at] = r;
                values[at] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Structural + numerical symmetry check.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        t.row_ptr == self.row_ptr && t.col_idx == self.col_idx && t.values == self.values
    }

    /// Scale all values in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Map values in place with access to the (row, col) position.
    pub fn map_values(&mut self, mut f: impl FnMut(u32, u32, f32) -> f32) {
        for r in 0..self.rows {
            let s = self.row_ptr[r as usize] as usize;
            let e = self.row_ptr[r as usize + 1] as usize;
            for i in s..e {
                self.values[i] = f(r, self.col_idx[i], self.values[i]);
            }
        }
    }

    /// Element-wise sum with an identically-shaped or differently-structured
    /// CSR of the same dimensions.
    pub fn add(&self, other: &Csr) -> Result<Csr> {
        self.merge_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Csr) -> Result<Csr> {
        self.merge_with(other, |a, b| a - b)
    }

    fn merge_with(&self, other: &Csr, op: impl Fn(f32, f32) -> f32) -> Result<Csr> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut row_ptr = vec![0u64; self.rows as usize + 1];
        let mut col_idx = Vec::with_capacity(self.nnz().max(other.nnz()));
        let mut values = Vec::with_capacity(col_idx.capacity());
        for r in 0..self.rows {
            let (ac, av) = self.row(r);
            let (bc, bv) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                let (col, val) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                    let out = (ac[i], op(av[i], 0.0));
                    i += 1;
                    out
                } else if i >= ac.len() || bc[j] < ac[i] {
                    let out = (bc[j], op(0.0, bv[j]));
                    j += 1;
                    out
                } else {
                    let out = (ac[i], op(av[i], bv[j]));
                    i += 1;
                    j += 1;
                    out
                };
                col_idx.push(col);
                values.push(val);
            }
            row_ptr[r as usize + 1] = col_idx.len() as u64;
        }
        Ok(Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Dense y = A·x (reference SpMV used by tests and small models).
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols as usize {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (x.len() as u32, 1),
            });
        }
        let mut y = vec![0f32; self.rows as usize];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            y[r as usize] = omega_linalg::kernels::sparse_dot(cols, vals, x);
        }
        Ok(y)
    }

    /// Bytes of the index structures (`row_ptr` + `col_idx`), the quantity
    /// CSDB shrinks; values excluded since both formats store them.
    pub fn index_bytes(&self) -> u64 {
        (self.row_ptr.len() * std::mem::size_of::<u64>()
            + self.col_idx.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Total payload bytes of the structure.
    pub fn size_bytes(&self) -> u64 {
        self.index_bytes() + (self.values.len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5 example graph: |V|=7, |E|=11 undirected.
    pub(crate) fn fig5_graph() -> Csr {
        let mut b = crate::builder::GraphBuilder::new(7);
        // Degrees: v1=4, others chosen to produce Deg_list [4,3,2].
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 5),
            (2, 4),
            (2, 6),
            (3, 5),
            (4, 6),
        ] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.build_csr().unwrap()
    }

    #[test]
    fn fig5_has_expected_shape() {
        let g = fig5_graph();
        assert_eq!(g.rows(), 7);
        assert_eq!(g.nnz(), 22); // 11 undirected edges
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn from_triples_sorts() {
        let m = Csr::from_triples(2, 3, vec![(1, 2, 3.0), (0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(m.row(0), (&[1u32][..], &[1.0f32][..]));
        assert_eq!(m.row(1), (&[0u32, 2][..], &[2.0f32, 3.0][..]));
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::from_parts(1, 1, vec![0], vec![], vec![]).is_err()); // row_ptr too short
        assert!(Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![]).is_err()); // len mismatch
        assert!(Csr::from_parts(1, 1, vec![0, 1], vec![5], vec![1.0]).is_err()); // col oob
        assert!(Csr::from_parts(2, 1, vec![0, 2, 1], vec![0, 0, 0], vec![1.0; 3]).is_err());
        // nonmonotone
    }

    #[test]
    fn transpose_involutive() {
        let m = Csr::from_triples(2, 3, vec![(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(2), (&[0u32][..], &[1.0f32][..]));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = Csr::from_triples(2, 2, vec![(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]).unwrap();
        let y = m.spmv(&[1.0, 2.0]).unwrap();
        assert_eq!(y, vec![4.0, 6.0]);
        assert!(m.spmv(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_merge_structures() {
        let a = Csr::from_triples(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let b = Csr::from_triples(2, 2, vec![(0, 1, 3.0), (1, 1, 4.0)]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.row(0), (&[0u32, 1][..], &[1.0f32, 3.0][..]));
        assert_eq!(sum.row(1), (&[1u32][..], &[6.0f32][..]));
        let diff = a.sub(&b).unwrap();
        assert_eq!(diff.row(1).1, &[-2.0]);
        let c = Csr::from_triples(3, 2, vec![]).unwrap();
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn scale_and_map() {
        let mut m = Csr::from_triples(2, 2, vec![(0, 1, 2.0), (1, 0, 4.0)]).unwrap();
        m.scale(0.5);
        assert_eq!(m.row(0).1, &[1.0]);
        m.map_values(|r, c, v| v + (r + c) as f32);
        assert_eq!(m.row(0).1, &[2.0]);
        assert_eq!(m.row(1).1, &[3.0]);
    }

    #[test]
    fn in_degrees_count_columns() {
        let m = Csr::from_triples(3, 3, vec![(0, 1, 1.0), (1, 1, 1.0), (2, 0, 1.0)]).unwrap();
        assert_eq!(m.in_degrees(), vec![1, 2, 0]);
    }

    #[test]
    fn size_accounting() {
        let g = fig5_graph();
        // row_ptr: 8*8=64, col_idx: 22*4=88, values: 22*4=88.
        assert_eq!(g.index_bytes(), 64 + 88);
        assert_eq!(g.size_bytes(), 64 + 88 + 88);
    }
}
