//! Classic graph algorithms used for dataset validation and analysis:
//! connected components, BFS, clustering coefficient and degree
//! assortativity — the structural checks that confirm the synthetic twins
//! behave like the social networks they stand in for.

use crate::csr::Csr;
use std::collections::VecDeque;

/// Connected-component labels (`0..k`) per node, plus the component count.
pub fn connected_components(g: &Csr) -> (Vec<u32>, u32) {
    let n = g.rows() as usize;
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &w in g.row(v).0 {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &Csr) -> usize {
    let (labels, k) = connected_components(g);
    let mut sizes = vec![0usize; k as usize];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Csr, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.rows() as usize];
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.row(v).0 {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Local clustering coefficient of one node: closed wedges / wedges.
pub fn local_clustering(g: &Csr, v: u32) -> f64 {
    let (neigh, _) = g.row(v);
    let k = neigh.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0u64;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if g.row(a).0.binary_search(&b).is_ok() {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Average local clustering coefficient over a deterministic node sample
/// (exact when `sample >= |V|`).
pub fn avg_clustering(g: &Csr, sample: usize) -> f64 {
    let n = g.rows() as usize;
    if n == 0 {
        return 0.0;
    }
    let step = (n / sample.max(1)).max(1);
    let nodes: Vec<u32> = (0..n).step_by(step).map(|v| v as u32).collect();
    let total: f64 = nodes.iter().map(|&v| local_clustering(g, v)).sum();
    total / nodes.len() as f64
}

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// edges. Social networks are typically weakly assortative-to-neutral;
/// pure R-MAT is disassortative.
pub fn degree_assortativity(g: &Csr) -> f64 {
    let mut sx = 0f64;
    let mut sy = 0f64;
    let mut sxx = 0f64;
    let mut syy = 0f64;
    let mut sxy = 0f64;
    let mut m = 0f64;
    for u in 0..g.rows() {
        let du = g.degree(u) as f64;
        for &v in g.row(u).0 {
            let dv = g.degree(v) as f64;
            sx += du;
            sy += dv;
            sxx += du * du;
            syy += dv * dv;
            sxy += du * dv;
            m += 1.0;
        }
    }
    if m == 0.0 {
        return 0.0;
    }
    let cov = sxy / m - (sx / m) * (sy / m);
    let vx = sxx / m - (sx / m).powi(2);
    let vy = syy / m - (sy / m).powi(2);
    let denom = (vx * vy).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::rmat::RmatConfig;

    fn two_triangles() -> Csr {
        let mut b = GraphBuilder::new(7); // node 6 isolated
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.build_csr().unwrap()
    }

    #[test]
    fn components_found() {
        let g = two_triangles();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1, 1.0).unwrap();
        }
        let g = b.build_csr().unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[6], u32::MAX);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = two_triangles();
        assert_eq!(local_clustering(&g, 0), 1.0);
        assert_eq!(local_clustering(&g, 6), 0.0); // isolated
                                                  // Star centre has no closed wedges.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(0, 3, 1.0).unwrap();
        let star = b.build_csr().unwrap();
        assert_eq!(local_clustering(&star, 0), 0.0);
        let avg = avg_clustering(&g, 100);
        assert!((avg - 6.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn rmat_twin_is_connected_enough_and_disassortative() {
        let g = RmatConfig::social(1 << 11, 30_000, 3)
            .generate_csr()
            .unwrap();
        let giant = largest_component_size(&g);
        assert!(
            giant as f64 > g.rows() as f64 * 0.5,
            "giant component {giant} of {}",
            g.rows()
        );
        // Skewed R-MAT graphs are disassortative (hubs attach to leaves).
        let r = degree_assortativity(&g);
        assert!(r < 0.05, "assortativity {r} should be <= ~0");
    }

    #[test]
    fn assortativity_of_regular_graph_is_degenerate_zero() {
        // A cycle: all degrees equal -> zero variance -> defined as 0.
        let mut b = GraphBuilder::new(6);
        for v in 0..6 {
            b.add_edge(v, (v + 1) % 6, 1.0).unwrap();
        }
        let g = b.build_csr().unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
