//! The Compressed Sparse Degree-Block format (CSDB, paper §III-A).
//!
//! CSDB exploits the degree skew of real-world graphs: nodes are relabelled
//! in descending-degree order, so nodes of equal degree form contiguous
//! *degree blocks*. Two small index arrays then replace CSR's `O(|V|)`
//! row-pointer array:
//!
//! * `Deg_list` — the distinct degrees, in block order (descending);
//! * `Deg_ind` — the start offset of each degree block in the node order.
//!
//! Both are `O(|Degree|)` — the number of *distinct* degrees — which is far
//! smaller than `|V|` for power-law graphs. The start of row `v` in
//! `col_list`/`nnz_list` is reconstructed arithmetically (Eq. 1):
//! `Deg_ptr(v) = block_cum[b] + (v − Deg_ind[b]) · Deg_list[b]`.
//!
//! The matrix CSDB represents is the adjacency matrix *in the permuted id
//! space* (rows and columns both relabelled), which for a symmetric graph is
//! a symmetric permutation — spectra and embedding quality are unaffected,
//! and [`Csdb::perm`] maps results back to original ids.

use crate::csr::Csr;
use crate::{GraphError, Result};

/// A sparse matrix in compressed sparse degree-block form.
///
/// ```
/// use omega_graph::{Csdb, GraphBuilder};
///
/// // A star: one hub, three leaves -> two degree blocks.
/// let mut b = GraphBuilder::new(4);
/// for leaf in 1..4 {
///     b.add_edge(0, leaf, 1.0).unwrap();
/// }
/// let csdb = Csdb::from_csr(&b.build_csr().unwrap()).unwrap();
/// assert_eq!(csdb.deg_list(), &[3, 1]);
/// assert_eq!(csdb.deg_ind(), &[0, 1, 4]);
/// // Permuted node 0 is the hub; Deg_ptr recovers its row arithmetically.
/// assert_eq!(csdb.degree(0), 3);
/// assert_eq!(csdb.deg_ptr(2), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csdb {
    rows: u32,
    cols: u32,
    /// Distinct degrees, descending (may end with 0 if isolated nodes exist).
    deg_list: Vec<u32>,
    /// Start node (in permuted id space) of each degree block; one extra
    /// trailing entry equal to `rows`.
    deg_ind: Vec<u32>,
    /// Cumulative nnz offset at the start of each block (len = blocks + 1).
    block_cum: Vec<u64>,
    /// Permuted id → original id.
    perm: Vec<u32>,
    /// Original id → permuted id.
    inv_perm: Vec<u32>,
    /// Column indices (in permuted id space), rows concatenated.
    col_list: Vec<u32>,
    /// Edge weights, parallel to `col_list`.
    nnz_list: Vec<f32>,
}

impl Csdb {
    /// Build from a CSR matrix (must be square: CSDB relabels rows and
    /// columns with one permutation).
    pub fn from_csr(csr: &Csr) -> Result<Self> {
        if csr.rows() != csr.cols() {
            return Err(GraphError::DimensionMismatch {
                left: (csr.rows(), csr.cols()),
                right: (csr.cols(), csr.rows()),
            });
        }
        let n = csr.rows();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }

        // Permutation: descending degree, ties by original id (stable).
        let mut perm: Vec<u32> = (0..n).collect();
        perm.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
        let mut inv_perm = vec![0u32; n as usize];
        for (new_id, &old_id) in perm.iter().enumerate() {
            inv_perm[old_id as usize] = new_id as u32;
        }

        // Degree blocks over the permuted order.
        let mut deg_list = Vec::new();
        let mut deg_ind = Vec::new();
        let mut block_cum = vec![0u64];
        let mut col_list = Vec::with_capacity(csr.nnz());
        let mut nnz_list = Vec::with_capacity(csr.nnz());

        let mut current_deg: Option<u32> = None;
        for (new_id, &old_id) in perm.iter().enumerate() {
            let deg = csr.degree(old_id) as u32;
            if current_deg != Some(deg) {
                deg_list.push(deg);
                deg_ind.push(new_id as u32);
                current_deg = Some(deg);
            }
            let (cols, vals) = csr.row(old_id);
            // Re-label columns into the permuted space and keep each row
            // sorted for deterministic kernels.
            let mut row: Vec<(u32, f32)> = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| (inv_perm[c as usize], v))
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in row {
                col_list.push(c);
                nnz_list.push(v);
            }
        }
        deg_ind.push(n);
        for b in 0..deg_list.len() {
            let nodes = (deg_ind[b + 1] - deg_ind[b]) as u64;
            let prev = block_cum[b];
            block_cum.push(prev + nodes * deg_list[b] as u64);
        }

        Ok(Csdb {
            rows: n,
            cols: n,
            deg_list,
            deg_ind,
            block_cum,
            perm,
            inv_perm,
            col_list,
            nnz_list,
        })
    }

    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_list.len()
    }

    /// Number of degree blocks (= number of distinct degrees).
    #[inline]
    pub fn blocks(&self) -> usize {
        self.deg_list.len()
    }

    /// The distinct-degree list (`Deg_list` in the paper).
    #[inline]
    pub fn deg_list(&self) -> &[u32] {
        &self.deg_list
    }

    /// Block start offsets (`Deg_ind`), with a trailing `rows` sentinel.
    #[inline]
    pub fn deg_ind(&self) -> &[u32] {
        &self.deg_ind
    }

    /// Permuted id → original id.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Original id → permuted id.
    #[inline]
    pub fn inv_perm(&self) -> &[u32] {
        &self.inv_perm
    }

    /// Column list in permuted id space.
    #[inline]
    pub fn col_list(&self) -> &[u32] {
        &self.col_list
    }

    /// Edge weight list.
    #[inline]
    pub fn nnz_list(&self) -> &[f32] {
        &self.nnz_list
    }

    /// Block index containing permuted node `v` (binary search over
    /// `Deg_ind`).
    #[inline]
    pub fn block_of(&self, v: u32) -> usize {
        debug_assert!(v < self.rows);
        match self.deg_ind.binary_search(&v) {
            Ok(b) if b == self.deg_ind.len() - 1 => b - 1,
            Ok(b) => b,
            Err(ins) => ins - 1,
        }
    }

    /// Degree of permuted node `v` via its block (`Deg_list` lookup).
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.deg_list[self.block_of(v)]
    }

    /// Start offset of row `v` in `col_list`/`nnz_list` — `Deg_ptr(v)`,
    /// Eq. 1, computed arithmetically from the block indices.
    #[inline]
    pub fn deg_ptr(&self, v: u32) -> u64 {
        let b = self.block_of(v);
        self.block_cum[b] + (v - self.deg_ind[b]) as u64 * self.deg_list[b] as u64
    }

    /// Neighbours and weights of permuted node `v`.
    #[inline]
    pub fn row(&self, v: u32) -> (&[u32], &[f32]) {
        let start = self.deg_ptr(v) as usize;
        let end = start + self.degree(v) as usize;
        (&self.col_list[start..end], &self.nnz_list[start..end])
    }

    /// Iterate `(degree, node_range, nnz_range)` per block — the access
    /// pattern the SpMM engine and EaTA walk.
    pub fn block_iter(&self) -> impl Iterator<Item = BlockInfo> + '_ {
        (0..self.blocks()).map(move |b| BlockInfo {
            degree: self.deg_list[b],
            node_start: self.deg_ind[b],
            node_end: self.deg_ind[b + 1],
            nnz_start: self.block_cum[b],
            nnz_end: self.block_cum[b + 1],
        })
    }

    /// In-degree of each permuted node (entries per column), the metric the
    /// degree-based WoFP prefetcher ranks by.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.cols as usize];
        for &c in &self.col_list {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Convert back to CSR (still in permuted id space).
    pub fn to_csr(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.rows as usize + 1);
        row_ptr.push(0u64);
        for v in 0..self.rows {
            row_ptr.push(self.deg_ptr(v) + self.degree(v) as u64);
        }
        Csr::from_parts(
            self.rows,
            self.cols,
            row_ptr,
            self.col_list.clone(),
            self.nnz_list.clone(),
        )
        .expect("CSDB invariants imply valid CSR")
    }

    /// Convert back to CSR in the *original* id space.
    pub fn to_csr_original(&self) -> Csr {
        let triples = (0..self.rows)
            .flat_map(|v| {
                let (cols, vals) = self.row(v);
                let orig_row = self.perm[v as usize];
                cols.iter()
                    .zip(vals)
                    .map(move |(&c, &w)| (orig_row, self.perm[c as usize], w))
                    .collect::<Vec<_>>()
            })
            .collect();
        Csr::from_triples(self.rows, self.cols, triples).expect("valid triples")
    }

    /// Transpose (via CSR round-trip; for the symmetric adjacency matrices
    /// of undirected graphs this is a no-op up to value order).
    pub fn transpose(&self) -> Result<Csdb> {
        Csdb::from_permuted_csr(
            self.to_csr().transpose(),
            self.perm.clone(),
            self.inv_perm.clone(),
        )
    }

    /// Element-wise sum with another CSDB over the same permutation.
    pub fn add(&self, other: &Csdb) -> Result<Csdb> {
        self.check_same_perm(other)?;
        Csdb::from_permuted_csr(
            self.to_csr().add(&other.to_csr())?,
            self.perm.clone(),
            self.inv_perm.clone(),
        )
    }

    /// Element-wise difference with another CSDB over the same permutation.
    pub fn sub(&self, other: &Csdb) -> Result<Csdb> {
        self.check_same_perm(other)?;
        Csdb::from_permuted_csr(
            self.to_csr().sub(&other.to_csr())?,
            self.perm.clone(),
            self.inv_perm.clone(),
        )
    }

    /// Scale all weights in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.nnz_list {
            *v *= factor;
        }
    }

    /// Map weights in place with the (permuted-row, permuted-col) position.
    pub fn map_values(&mut self, mut f: impl FnMut(u32, u32, f32) -> f32) {
        for v in 0..self.rows {
            let start = self.deg_ptr(v) as usize;
            let end = start + self.degree(v) as usize;
            for i in start..end {
                self.nnz_list[i] = f(v, self.col_list[i], self.nnz_list[i]);
            }
        }
    }

    /// Reference SpMV in permuted space: `y = A'·x`.
    pub fn spmv(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols as usize {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (x.len() as u32, 1),
            });
        }
        let mut y = vec![0f32; self.rows as usize];
        for v in 0..self.rows {
            let (cols, vals) = self.row(v);
            y[v as usize] = omega_linalg::kernels::sparse_dot(cols, vals, x);
        }
        Ok(y)
    }

    /// Bytes of the compressed index (`Deg_list` + `Deg_ind` + block
    /// cumulative offsets) — `O(|Degree|)`, the quantity Fig. 19(a)'s CSR
    /// comparison is about.
    pub fn index_bytes(&self) -> u64 {
        ((self.deg_list.len() + self.deg_ind.len()) * std::mem::size_of::<u32>()
            + self.block_cum.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Total payload bytes of the structure (excluding the permutation,
    /// which is preprocessing metadata shared by every format).
    pub fn size_bytes(&self) -> u64 {
        self.index_bytes()
            + (self.col_list.len() * std::mem::size_of::<u32>()
                + self.nnz_list.len() * std::mem::size_of::<f32>()) as u64
    }

    fn check_same_perm(&self, other: &Csdb) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        if self.perm != other.perm {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, 0),
                right: (other.rows, 1),
            });
        }
        Ok(())
    }

    /// Rebuild CSDB from a CSR that is *already* in this permuted id space,
    /// carrying the permutation through (used by the operators so that id
    /// spaces stay consistent). The CSR's degree ordering may differ from
    /// descending (e.g. after structural changes), so a fresh relabelling is
    /// composed with the existing permutation.
    fn from_permuted_csr(csr: Csr, perm: Vec<u32>, inv_perm: Vec<u32>) -> Result<Csdb> {
        let fresh = Csdb::from_csr(&csr)?;
        // Compose: fresh.perm maps fresh ids -> csr ids; `perm` maps csr ids
        // -> original ids.
        let composed_perm: Vec<u32> = fresh.perm.iter().map(|&mid| perm[mid as usize]).collect();
        let mut composed_inv = vec![0u32; composed_perm.len()];
        for (new_id, &old_id) in composed_perm.iter().enumerate() {
            composed_inv[old_id as usize] = new_id as u32;
        }
        let _ = inv_perm;
        Ok(Csdb {
            perm: composed_perm,
            inv_perm: composed_inv,
            ..fresh
        })
    }
}

/// One degree block: all nodes of equal degree, contiguous in id and nnz
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    pub degree: u32,
    pub node_start: u32,
    pub node_end: u32,
    pub nnz_start: u64,
    pub nnz_end: u64,
}

impl BlockInfo {
    pub fn nodes(&self) -> u32 {
        self.node_end - self.node_start
    }

    pub fn nnzs(&self) -> u64 {
        self.nnz_end - self.nnz_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The paper's Figure 5 example graph (|V|=7, |E|=11).
    fn fig5() -> Csr {
        let mut b = GraphBuilder::new(7);
        for &(u, v) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 5),
            (2, 4),
            (2, 6),
            (3, 5),
            (4, 6),
        ] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        b.build_csr().unwrap()
    }

    #[test]
    fn fig5_deg_list_and_ind_match_paper() {
        let csdb = Csdb::from_csr(&fig5()).unwrap();
        // Paper: Deg_list = [4, 3, 2] (their trailing 0 is a sentinel for an
        // empty block; we only store existing degrees) and block starts
        // [0, 3, 5] with the graph's 22 directed nnz.
        assert_eq!(csdb.deg_list(), &[4, 3, 2]);
        assert_eq!(csdb.deg_ind(), &[0, 3, 5, 7]);
        assert_eq!(csdb.nnz(), 22);
        assert_eq!(csdb.blocks(), 3);
    }

    #[test]
    fn deg_ptr_matches_equation_1() {
        let csdb = Csdb::from_csr(&fig5()).unwrap();
        // Deg_ptr is the cumulative degree of all earlier nodes.
        let mut expect = 0u64;
        for v in 0..csdb.rows() {
            assert_eq!(csdb.deg_ptr(v), expect, "node {v}");
            expect += csdb.degree(v) as u64;
        }
        assert_eq!(expect, csdb.nnz() as u64);
    }

    #[test]
    fn rows_roundtrip_to_original_graph() {
        let csr = fig5();
        let csdb = Csdb::from_csr(&csr).unwrap();
        let back = csdb.to_csr_original();
        assert_eq!(back, csr);
    }

    #[test]
    fn permuted_csr_is_consistent() {
        let csr = fig5();
        let csdb = Csdb::from_csr(&csr).unwrap();
        let pcsr = csdb.to_csr();
        // Row v of the permuted CSR equals CSDB's row v.
        for v in 0..csdb.rows() {
            assert_eq!(pcsr.row(v), csdb.row(v));
        }
        // Degrees descend across the permuted ids.
        let degs: Vec<u64> = (0..pcsr.rows()).map(|r| pcsr.degree(r)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn index_is_smaller_than_csr_for_skewed_graphs() {
        // A star graph: 1 hub + 1000 leaves -> 2 distinct degrees.
        let mut b = GraphBuilder::new(1001);
        for leaf in 1..=1000 {
            b.add_edge(0, leaf, 1.0).unwrap();
        }
        let csr = b.build_csr().unwrap();
        let csdb = Csdb::from_csr(&csr).unwrap();
        assert_eq!(csdb.blocks(), 2);
        assert!(csdb.index_bytes() * 50 < csr.index_bytes());
    }

    #[test]
    fn spmv_agrees_with_csr_after_permutation() {
        let csr = fig5();
        let csdb = Csdb::from_csr(&csr).unwrap();
        let x_orig: Vec<f32> = (0..7).map(|i| i as f32 + 1.0).collect();
        // Permute x into the CSDB space, multiply, un-permute the result.
        let x_perm: Vec<f32> = csdb.perm().iter().map(|&o| x_orig[o as usize]).collect();
        let y_perm = csdb.spmv(&x_perm).unwrap();
        let mut y = vec![0f32; 7];
        for (new_id, &old_id) in csdb.perm().iter().enumerate() {
            y[old_id as usize] = y_perm[new_id];
        }
        assert_eq!(y, csr.spmv(&x_orig).unwrap());
    }

    #[test]
    fn operators_add_sub_scale() {
        let csr = fig5();
        let a = Csdb::from_csr(&csr).unwrap();
        let mut b = a.clone();
        b.scale(2.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.nnz(), a.nnz());
        assert!(sum.nnz_list().iter().all(|&w| (w - 3.0).abs() < 1e-6));
        let diff = sum.sub(&a).unwrap();
        assert!(diff.nnz_list().iter().all(|&w| (w - 2.0).abs() < 1e-6));
        // The permutation is preserved through the operators.
        assert_eq!(sum.perm(), a.perm());
    }

    #[test]
    fn transpose_of_symmetric_graph_is_same_matrix() {
        let a = Csdb::from_csr(&fig5()).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.to_csr_original(), a.to_csr_original());
    }

    #[test]
    fn map_values_sees_positions() {
        let mut a = Csdb::from_csr(&fig5()).unwrap();
        a.map_values(|r, c, _| (r + c) as f32);
        for v in 0..a.rows() {
            let (cols, vals) = a.row(v);
            for (&c, &w) in cols.iter().zip(vals) {
                assert_eq!(w, (v + c) as f32);
            }
        }
    }

    #[test]
    fn isolated_nodes_form_zero_block() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        let csdb = Csdb::from_csr(&b.build_csr().unwrap()).unwrap();
        assert_eq!(csdb.deg_list(), &[1, 0]);
        assert_eq!(csdb.degree(3), 0);
        assert_eq!(csdb.row(3).0.len(), 0);
        assert_eq!(csdb.deg_ptr(3), 2);
    }

    #[test]
    fn block_iter_covers_everything() {
        let csdb = Csdb::from_csr(&fig5()).unwrap();
        let blocks: Vec<_> = csdb.block_iter().collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].nodes(), 3);
        assert_eq!(blocks[0].nnzs(), 12);
        let total_nodes: u32 = blocks.iter().map(|b| b.nodes()).sum();
        let total_nnz: u64 = blocks.iter().map(|b| b.nnzs()).sum();
        assert_eq!(total_nodes, 7);
        assert_eq!(total_nnz, 22);
    }

    #[test]
    fn in_degrees_sum_to_nnz() {
        let csdb = Csdb::from_csr(&fig5()).unwrap();
        let ind = csdb.in_degrees();
        assert_eq!(ind.iter().sum::<u64>(), csdb.nnz() as u64);
    }

    #[test]
    fn rejects_non_square_and_empty() {
        let rect = Csr::from_triples(2, 3, vec![(0, 2, 1.0)]).unwrap();
        assert!(Csdb::from_csr(&rect).is_err());
    }
}
