//! Seeded R-MAT graph generator (Chakrabarti et al., SDM 2004) — the paper
//! uses it for the scalability sweep across graph sizes and densities
//! (Fig. 17(b)) and we additionally use it to synthesise scaled-down twins
//! of the Table I datasets.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::Result;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters. Probabilities (a, b, c, d) weight the four quadrants
/// at each recursion level; `a ≫ d` yields the heavy-tailed degree skew of
/// social networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Target node count (the id space; isolated nodes may remain).
    pub nodes: u32,
    /// Number of undirected edges to sample (before dedup).
    pub edges: u64,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
    /// Per-level probability perturbation, breaking the strict
    /// self-similarity of pure R-MAT (as the original paper recommends).
    pub noise: f64,
    pub seed: u64,
}

impl RmatConfig {
    /// The classic skewed social-network parameterisation
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
    pub fn social(nodes: u32, edges: u64, seed: u64) -> Self {
        RmatConfig {
            nodes,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
            seed,
        }
    }

    /// A near-uniform (Erdős–Rényi-like) parameterisation for the dense /
    /// low-skew end of the Fig. 17(b) sweep.
    pub fn uniform(nodes: u32, edges: u64, seed: u64) -> Self {
        RmatConfig {
            nodes,
            edges,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
            seed,
        }
    }

    /// Levels of recursion needed to cover the id space.
    fn levels(&self) -> u32 {
        32 - self.nodes.next_power_of_two().leading_zeros() - 1
    }

    /// Sample raw edges (may contain duplicates and self-loops; graph
    /// construction cleans them).
    pub fn generate_edges(&self) -> EdgeList {
        assert!(self.nodes >= 2, "R-MAT needs at least 2 nodes");
        let total = self.a + self.b + self.c + self.d;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "quadrant probabilities must sum to 1 (got {total})"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let levels = self.levels();
        let mut list = EdgeList::with_capacity(self.edges as usize);
        while (list.len() as u64) < self.edges {
            let (mut lo_r, mut lo_c) = (0u64, 0u64);
            let mut span = 1u64 << levels;
            while span > 1 {
                span /= 2;
                // Perturb the quadrant weights at each level.
                let jitter = |p: f64, rng: &mut SmallRng| {
                    (p * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>())).max(1e-9)
                };
                let (pa, pb, pc, pd) = (
                    jitter(self.a, &mut rng),
                    jitter(self.b, &mut rng),
                    jitter(self.c, &mut rng),
                    jitter(self.d, &mut rng),
                );
                let norm = pa + pb + pc + pd;
                let roll = rng.gen::<f64>() * norm;
                if roll < pa {
                    // top-left
                } else if roll < pa + pb {
                    lo_c += span;
                } else if roll < pa + pb + pc {
                    lo_r += span;
                } else {
                    lo_r += span;
                    lo_c += span;
                }
            }
            let (u, v) = (lo_r as u32, lo_c as u32);
            if u < self.nodes && v < self.nodes && u != v {
                list.push(u, v, 1.0);
            }
        }
        list
    }

    /// Generate and build the symmetric CSR adjacency matrix.
    pub fn generate_csr(&self) -> Result<Csr> {
        let edges = self.generate_edges();
        let mut b = GraphBuilder::new(self.nodes);
        for (u, v, w) in edges.iter() {
            b.add_edge(u, v, w)?;
        }
        b.build_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig::social(1 << 10, 4_000, 42);
        let a = cfg.generate_edges();
        let b = cfg.generate_edges();
        assert_eq!(a, b);
        let other = RmatConfig::social(1 << 10, 4_000, 43).generate_edges();
        assert_ne!(a, other);
    }

    #[test]
    fn respects_node_bounds_and_no_self_loops() {
        let cfg = RmatConfig::social(1000, 3_000, 7); // non-power-of-two id space
        let edges = cfg.generate_edges();
        assert_eq!(edges.len() as u64, cfg.edges);
        for (u, v, _) in edges.iter() {
            assert!(u < 1000 && v < 1000);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn social_parameterisation_is_skewed() {
        let g = RmatConfig::social(1 << 12, 40_000, 1)
            .generate_csr()
            .unwrap();
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<u64>() as f64 / degs.len() as f64;
        // Power-law-ish: the hub is far above the average.
        assert!(
            max as f64 > avg * 10.0,
            "max={max} avg={avg} not skewed enough"
        );
    }

    #[test]
    fn uniform_parameterisation_is_flat() {
        let g = RmatConfig::uniform(1 << 10, 20_000, 1)
            .generate_csr()
            .unwrap();
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<u64>() as f64 / degs.len() as f64;
        assert!((max as f64) < avg * 3.0, "max={max} avg={avg} too skewed");
    }

    #[test]
    fn csr_is_symmetric() {
        let g = RmatConfig::social(512, 2_000, 9).generate_csr().unwrap();
        assert!(g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            ..RmatConfig::social(16, 10, 0)
        };
        cfg.generate_edges();
    }
}
