//! Stochastic block model generator: community-structured graphs with
//! ground-truth labels, used to evaluate embedding quality (link prediction
//! and node classification) — the "maintains the effectiveness of ProNE"
//! claim of §IV-B.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::Result;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A planted-partition graph: `communities` equal-sized blocks where
/// within-block edges appear with expected degree `deg_in` per node and
/// cross-block edges with expected degree `deg_out`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbmConfig {
    pub nodes: u32,
    pub communities: u32,
    /// Expected within-community degree per node.
    pub deg_in: f64,
    /// Expected cross-community degree per node.
    pub deg_out: f64,
    pub seed: u64,
}

impl SbmConfig {
    /// A clearly-clustered default: 4 communities, strong assortativity.
    pub fn assortative(nodes: u32, seed: u64) -> Self {
        SbmConfig {
            nodes,
            communities: 4,
            deg_in: 12.0,
            deg_out: 2.0,
            seed,
        }
    }

    /// Ground-truth community of each node (blocks of equal size).
    pub fn labels(&self) -> Vec<u32> {
        let block = self.nodes.div_ceil(self.communities).max(1);
        (0..self.nodes)
            .map(|v| (v / block).min(self.communities - 1))
            .collect()
    }

    /// Sample the graph.
    pub fn generate_csr(&self) -> Result<Csr> {
        assert!(self.communities >= 1 && self.nodes >= self.communities);
        let labels = self.labels();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::new(self.nodes);

        // Expected edge counts: within = n*deg_in/2, cross = n*deg_out/2.
        let within_edges = (self.nodes as f64 * self.deg_in / 2.0).round() as u64;
        let cross_edges = (self.nodes as f64 * self.deg_out / 2.0).round() as u64;
        let block = self.nodes.div_ceil(self.communities).max(1);

        let mut added = 0u64;
        let mut guard = 0u64;
        while added < within_edges && guard < within_edges * 50 {
            guard += 1;
            let u = rng.gen_range(0..self.nodes);
            let base = (u / block) * block;
            let hi = (base + block).min(self.nodes);
            let v = rng.gen_range(base..hi);
            if u != v {
                b.add_edge(u, v, 1.0)?;
                added += 1;
            }
        }
        added = 0;
        guard = 0;
        while added < cross_edges && guard < cross_edges * 50 + 1 {
            guard += 1;
            let u = rng.gen_range(0..self.nodes);
            let v = rng.gen_range(0..self.nodes);
            if u != v && labels[u as usize] != labels[v as usize] {
                b.add_edge(u, v, 1.0)?;
                added += 1;
            }
        }
        b.build_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_partition_evenly() {
        let cfg = SbmConfig::assortative(100, 1);
        let labels = cfg.labels();
        assert_eq!(labels.len(), 100);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[99], 3);
        for c in 0..4 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 25);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SbmConfig::assortative(200, 9);
        assert_eq!(cfg.generate_csr().unwrap(), cfg.generate_csr().unwrap());
    }

    #[test]
    fn assortative_graph_has_mostly_internal_edges() {
        let cfg = SbmConfig::assortative(400, 3);
        let g = cfg.generate_csr().unwrap();
        let labels = cfg.labels();
        let mut internal = 0u64;
        let mut cross = 0u64;
        for u in 0..g.rows() {
            for &v in g.row(u).0 {
                if labels[u as usize] == labels[v as usize] {
                    internal += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(
            internal > cross * 3,
            "internal={internal} cross={cross} not assortative"
        );
        // Average degree near deg_in + deg_out (dedup loses a little).
        let avg = g.nnz() as f64 / g.rows() as f64;
        assert!(avg > 8.0 && avg < 15.0, "avg={avg}");
    }

    #[test]
    fn single_community_has_no_cross_edges() {
        let cfg = SbmConfig {
            nodes: 50,
            communities: 1,
            deg_in: 6.0,
            deg_out: 4.0, // unsatisfiable; generator must not loop forever
            seed: 2,
        };
        let g = cfg.generate_csr().unwrap();
        assert!(g.nnz() > 0);
    }
}
