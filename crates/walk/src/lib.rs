//! # omega-walk — random-walk embedding substrate
//!
//! The paper's introduction motivates OMeGa against the classic random-walk
//! embedding family (DeepWalk, node2vec, LINE) and its evaluation compares
//! against the distributed walk-based system DistGER. This crate implements
//! that family from scratch:
//!
//! * [`alias`] — O(1) weighted sampling (Walker's alias method);
//! * [`walker`] — uniform (DeepWalk) and biased (node2vec p/q) walks;
//! * [`corpus`] — walks → (center, context) skip-gram pairs;
//! * [`sgns`] — skip-gram with negative sampling, plain SGD;
//! * [`infowalk`] — DistGER/HuGE-style information-oriented walks whose
//!   length adapts to the entropy gain of newly visited nodes.

pub mod alias;
pub mod corpus;
pub mod infowalk;
pub mod line;
pub mod sgns;
pub mod walker;

pub use alias::AliasTable;
pub use corpus::{pairs_from_walks, SkipGramPair};
pub use infowalk::{InfoWalkConfig, InfoWalker};
pub use line::{LineConfig, LineModel, LineOrder};
pub use sgns::{SgnsConfig, SgnsModel};
pub use walker::{WalkConfig, Walker};
