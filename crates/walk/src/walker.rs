//! Random-walk generation: uniform first-order (DeepWalk) and biased
//! second-order (node2vec) walks.

use crate::alias::AliasTable;
use omega_graph::Csr;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Walk-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Steps per walk (including the start node).
    pub walk_length: usize,
    /// node2vec return parameter `p` (1.0 = unbiased).
    pub p: f32,
    /// node2vec in-out parameter `q` (1.0 = unbiased).
    pub q: f32,
    pub seed: u64,
}

impl WalkConfig {
    /// DeepWalk defaults (uniform second-order behaviour).
    pub fn deepwalk(walks_per_node: usize, walk_length: usize, seed: u64) -> Self {
        WalkConfig {
            walks_per_node,
            walk_length,
            p: 1.0,
            q: 1.0,
            seed,
        }
    }

    /// Whether the walk is biased (requires the slower second-order step).
    pub fn is_biased(&self) -> bool {
        (self.p - 1.0).abs() > 1e-6 || (self.q - 1.0).abs() > 1e-6
    }
}

/// A random-walk generator over a CSR graph.
///
/// ```
/// use omega_graph::RmatConfig;
/// use omega_walk::{WalkConfig, Walker};
///
/// let g = RmatConfig::social(128, 800, 2).generate_csr().unwrap();
/// let walker = Walker::new(&g, WalkConfig::deepwalk(2, 10, 9));
/// let walks = walker.generate_all();
/// assert_eq!(walks.len(), 128 * 2);
/// assert!(walks.iter().all(|w| w.len() <= 10));
/// ```
#[derive(Debug)]
pub struct Walker<'g> {
    graph: &'g Csr,
    tables: Vec<Option<AliasTable>>,
    cfg: WalkConfig,
}

impl<'g> Walker<'g> {
    pub fn new(graph: &'g Csr, cfg: WalkConfig) -> Walker<'g> {
        // Per-node alias tables over (weighted) neighbours.
        let tables = (0..graph.rows())
            .map(|v| {
                let (_, w) = graph.row(v);
                (!w.is_empty()).then(|| AliasTable::new(w))
            })
            .collect();
        Walker { graph, tables, cfg }
    }

    pub fn config(&self) -> &WalkConfig {
        &self.cfg
    }

    /// One walk from `start`. Stops early at sink nodes.
    pub fn walk_from(&self, start: u32, rng: &mut SmallRng) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.walk_length);
        walk.push(start);
        let mut prev: Option<u32> = None;
        let mut curr = start;
        while walk.len() < self.cfg.walk_length {
            let (neigh, weights) = self.graph.row(curr);
            if neigh.is_empty() {
                break;
            }
            let next = match prev {
                Some(p) if self.cfg.is_biased() => self.biased_step(p, neigh, weights, rng),
                _ => {
                    let t = self.tables[curr as usize].as_ref().expect("non-empty row");
                    neigh[t.sample(rng)]
                }
            };
            walk.push(next);
            prev = Some(curr);
            curr = next;
        }
        walk
    }

    /// node2vec second-order transition: weight × 1/p when returning to the
    /// previous node, ×1 for common neighbours of `prev`, ×1/q otherwise.
    fn biased_step(&self, prev: u32, neigh: &[u32], weights: &[f32], rng: &mut SmallRng) -> u32 {
        let (prev_neigh, _) = self.graph.row(prev);
        let biased: Vec<f32> = neigh
            .iter()
            .zip(weights)
            .map(|(&n, &w)| {
                if n == prev {
                    w / self.cfg.p
                } else if prev_neigh.binary_search(&n).is_ok() {
                    w
                } else {
                    w / self.cfg.q
                }
            })
            .collect();
        neigh[AliasTable::new(&biased).sample(rng)]
    }

    /// Generate the full corpus: `walks_per_node` walks from every node,
    /// deterministic in the seed.
    pub fn generate_all(&self) -> Vec<Vec<u32>> {
        let n = self.graph.rows();
        let mut walks = Vec::with_capacity(n as usize * self.cfg.walks_per_node);
        for round in 0..self.cfg.walks_per_node {
            for v in 0..n {
                let mut rng = SmallRng::seed_from_u64(
                    self.cfg
                        .seed
                        .wrapping_add((round as u64) << 32)
                        .wrapping_add(v as u64),
                );
                walks.push(self.walk_from(v, &mut rng));
            }
        }
        walks
    }

    /// Generate the corpus on the shared [`omega_par`] worker pool.
    /// Identical output to [`Walker::generate_all`] at every worker count:
    /// each walk's RNG is seeded from its `(round, node)` index, so
    /// partitioning the walk index space is free, and chunks are merged in
    /// index order. Chunks are capped well below `total / workers` so the
    /// pool's work-stealing deques can rebalance skewed walk lengths
    /// (hub-heavy regions walk slower) instead of waiting on the slowest
    /// fixed partition.
    pub fn generate_all_parallel(&self, workers: usize) -> Vec<Vec<u32>> {
        let n = self.graph.rows() as usize;
        let total = n * self.cfg.walks_per_node;
        let workers = workers.max(1).min(total.max(1));
        let chunk = total.div_ceil(workers).clamp(1, 128);
        let tasks = total.div_ceil(chunk);
        omega_par::run_labeled("walk.generate", workers, tasks, |_: &mut (), w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(total);
            (start..end)
                .map(|idx| {
                    let round = idx / n;
                    let v = (idx % n) as u32;
                    let mut rng = SmallRng::seed_from_u64(
                        self.cfg
                            .seed
                            .wrapping_add((round as u64) << 32)
                            .wrapping_add(v as u64),
                    );
                    self.walk_from(v, &mut rng)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Total steps a corpus would contain (for cost models).
    pub fn expected_steps(&self) -> u64 {
        self.graph.rows() as u64 * self.cfg.walks_per_node as u64 * self.cfg.walk_length as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::{GraphBuilder, RmatConfig};

    fn path_graph() -> Csr {
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1, 1.0).unwrap();
        }
        b.build_csr().unwrap()
    }

    #[test]
    fn walks_follow_edges() {
        let g = RmatConfig::social(256, 2_000, 3).generate_csr().unwrap();
        let w = Walker::new(&g, WalkConfig::deepwalk(2, 10, 5));
        for walk in w.generate_all() {
            assert!(!walk.is_empty() && walk.len() <= 10);
            for pair in walk.windows(2) {
                assert!(
                    g.row(pair[0]).0.binary_search(&pair[1]).is_ok(),
                    "step {}->{} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let g = path_graph();
        let cfg = WalkConfig::deepwalk(3, 6, 9);
        let w = Walker::new(&g, cfg);
        let a = w.generate_all();
        let b = w.generate_all();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5 * 3);
        assert_eq!(w.expected_steps(), 5 * 3 * 6);
    }

    #[test]
    fn isolated_nodes_yield_single_step_walks() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build_csr().unwrap();
        let w = Walker::new(&g, WalkConfig::deepwalk(1, 5, 1));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(w.walk_from(2, &mut rng), vec![2]);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let g = RmatConfig::social(200, 1_500, 4).generate_csr().unwrap();
        let w = Walker::new(&g, WalkConfig::deepwalk(3, 8, 11));
        let serial = w.generate_all();
        for workers in [1, 2, 5, 16] {
            assert_eq!(
                w.generate_all_parallel(workers),
                serial,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn low_q_explores_farther_than_high_q() {
        // On a path graph, q < 1 pushes outward (DFS-like), q > 1 keeps
        // walks near the start (BFS-like).
        let g = path_graph();
        let reach = |p: f32, q: f32| -> f64 {
            let cfg = WalkConfig {
                walks_per_node: 40,
                walk_length: 5,
                p,
                q,
                seed: 7,
            };
            let w = Walker::new(&g, cfg);
            let walks = w.generate_all();
            let total: u32 = walks
                .iter()
                .filter(|wk| wk[0] == 0)
                .map(|wk| *wk.last().unwrap())
                .sum();
            total as f64
        };
        let explorer = reach(4.0, 0.25);
        let homebody = reach(0.25, 4.0);
        assert!(
            explorer > homebody,
            "explorer reach {explorer} should beat homebody {homebody}"
        );
    }
}
