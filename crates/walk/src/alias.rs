//! Walker's alias method: O(n) construction, O(1) weighted sampling.

use rand::Rng;

/// A pre-built table for sampling `0..n` with probabilities proportional to
/// the construction weights.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f32]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().map(|&w| w.max(0.0) as f64).sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let n = weights.len();
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| w.max(0.0) as f64 * n as f64 / total)
            .collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l as u32;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers all resolve to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count={c}");
        }
    }

    #[test]
    fn skewed_weights_match_expectation() {
        let t = AliasTable::new(&[1.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ones = 0u32;
        for _ in 0..40_000 {
            if t.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
