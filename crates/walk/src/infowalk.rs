//! Information-oriented random walks — the mechanism behind DistGER (and
//! HuGE), the strongest distributed competitor in Fig. 18(a).
//!
//! Instead of a fixed walk length, each walk continues only while it keeps
//! gaining information: the walker tracks the entropy of its visit
//! distribution and stops once the relative entropy gain of a step falls
//! below a threshold for a few consecutive steps. This concentrates effort
//! on informative regions and is why DistGER needs far fewer sampled steps
//! than DeepWalk-style systems for the same quality.

use crate::alias::AliasTable;
use omega_graph::Csr;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Information-oriented walk parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfoWalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Hard cap on walk length (safety bound).
    pub max_length: usize,
    /// Minimum relative entropy gain per step to keep walking.
    pub gain_threshold: f64,
    /// Consecutive low-gain steps tolerated before stopping.
    pub patience: usize,
    pub seed: u64,
}

impl Default for InfoWalkConfig {
    fn default() -> Self {
        InfoWalkConfig {
            walks_per_node: 10,
            max_length: 80,
            gain_threshold: 0.01,
            patience: 3,
            seed: 0x1f0,
        }
    }
}

/// Generator of entropy-adaptive walks.
#[derive(Debug)]
pub struct InfoWalker<'g> {
    graph: &'g Csr,
    tables: Vec<Option<AliasTable>>,
    cfg: InfoWalkConfig,
}

impl<'g> InfoWalker<'g> {
    pub fn new(graph: &'g Csr, cfg: InfoWalkConfig) -> InfoWalker<'g> {
        let tables = (0..graph.rows())
            .map(|v| {
                let (_, w) = graph.row(v);
                (!w.is_empty()).then(|| AliasTable::new(w))
            })
            .collect();
        InfoWalker { graph, tables, cfg }
    }

    /// Shannon entropy of a visit-count multiset.
    fn entropy(counts: &HashMap<u32, u32>, total: u32) -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.ln()
            })
            .sum()
    }

    /// One adaptive walk from `start`.
    pub fn walk_from(&self, start: u32, rng: &mut SmallRng) -> Vec<u32> {
        let mut walk = vec![start];
        let mut counts: HashMap<u32, u32> = HashMap::new();
        counts.insert(start, 1);
        let mut h_prev = 0.0f64;
        let mut low_gain_steps = 0usize;
        let mut curr = start;

        while walk.len() < self.cfg.max_length {
            let Some(table) = self.tables[curr as usize].as_ref() else {
                break;
            };
            let (neigh, _) = self.graph.row(curr);
            let next = neigh[table.sample(rng)];
            walk.push(next);
            *counts.entry(next).or_insert(0) += 1;
            curr = next;

            let h = Self::entropy(&counts, walk.len() as u32);
            let gain = if h_prev > 0.0 {
                (h - h_prev) / h_prev
            } else {
                1.0
            };
            h_prev = h;
            if gain < self.cfg.gain_threshold {
                low_gain_steps += 1;
                if low_gain_steps >= self.cfg.patience {
                    break;
                }
            } else {
                low_gain_steps = 0;
            }
        }
        walk
    }

    /// Generate the adaptive corpus (deterministic in the seed).
    pub fn generate_all(&self) -> Vec<Vec<u32>> {
        let n = self.graph.rows();
        let mut walks = Vec::with_capacity(n as usize * self.cfg.walks_per_node);
        for round in 0..self.cfg.walks_per_node {
            for v in 0..n {
                let mut rng = SmallRng::seed_from_u64(
                    self.cfg
                        .seed
                        .wrapping_add((round as u64) << 32)
                        .wrapping_add(v as u64),
                );
                walks.push(self.walk_from(v, &mut rng));
            }
        }
        walks
    }

    /// Generate the adaptive corpus on the shared [`omega_par`] worker
    /// pool. Identical output to [`InfoWalker::generate_all`] at every
    /// worker count — per-walk seeding makes the index space freely
    /// partitionable, and chunks merge in index order. Chunks are capped
    /// well below `total / workers`: adaptive walk lengths are exactly the
    /// skew the pool's work-stealing deques are there to rebalance.
    pub fn generate_all_parallel(&self, workers: usize) -> Vec<Vec<u32>> {
        let n = self.graph.rows() as usize;
        let total = n * self.cfg.walks_per_node;
        let workers = workers.max(1).min(total.max(1));
        let chunk = total.div_ceil(workers).clamp(1, 128);
        let tasks = total.div_ceil(chunk);
        omega_par::run_labeled("walk.infowalk", workers, tasks, |_: &mut (), w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(total);
            (start..end)
                .map(|idx| {
                    let round = idx / n;
                    let v = (idx % n) as u32;
                    let mut rng = SmallRng::seed_from_u64(
                        self.cfg
                            .seed
                            .wrapping_add((round as u64) << 32)
                            .wrapping_add(v as u64),
                    );
                    self.walk_from(v, &mut rng)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::{GraphBuilder, RmatConfig};

    #[test]
    fn adaptive_walks_are_shorter_than_the_cap() {
        let g = RmatConfig::social(512, 4_000, 6).generate_csr().unwrap();
        let w = InfoWalker::new(&g, InfoWalkConfig::default());
        let walks = w.generate_all();
        let total: usize = walks.iter().map(|w| w.len()).sum();
        let avg = total as f64 / walks.len() as f64;
        assert!(
            avg < 80.0 * 0.8,
            "information stopping should cut average length, got {avg}"
        );
        assert!(walks.iter().all(|w| w.len() <= 80));
        // Walks still follow edges.
        for walk in walks.iter().take(50) {
            for pair in walk.windows(2) {
                assert!(g.row(pair[0]).0.binary_search(&pair[1]).is_ok());
            }
        }
    }

    #[test]
    fn revisiting_cliques_stop_early_vs_paths() {
        // A tight triangle forces revisits (no entropy gain) -> short walks.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 0, 1.0).unwrap();
        let tri = b.build_csr().unwrap();
        // A long path keeps discovering new nodes -> walks run to the cap
        // (modulo direction reversals).
        let mut b = GraphBuilder::new(200);
        for v in 0..199 {
            b.add_edge(v, v + 1, 1.0).unwrap();
        }
        let path = b.build_csr().unwrap();

        let cfg = InfoWalkConfig {
            walks_per_node: 3,
            ..InfoWalkConfig::default()
        };
        let avg = |g: &Csr| {
            let w = InfoWalker::new(g, cfg);
            let walks = w.generate_all();
            walks.iter().map(|w| w.len()).sum::<usize>() as f64 / walks.len() as f64
        };
        assert!(
            avg(&tri) < avg(&path),
            "clique walks should stop earlier than path walks"
        );
    }

    #[test]
    fn deterministic() {
        let g = RmatConfig::social(128, 600, 2).generate_csr().unwrap();
        let w = InfoWalker::new(&g, InfoWalkConfig::default());
        assert_eq!(w.generate_all(), w.generate_all());
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let g = RmatConfig::social(150, 900, 8).generate_csr().unwrap();
        let w = InfoWalker::new(&g, InfoWalkConfig::default());
        let serial = w.generate_all();
        for workers in [1, 2, 5, 16] {
            assert_eq!(
                w.generate_all_parallel(workers),
                serial,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn entropy_helper() {
        let mut counts = HashMap::new();
        counts.insert(0u32, 2u32);
        counts.insert(1, 2);
        // Uniform over 2 symbols: ln 2.
        assert!((InfoWalker::entropy(&counts, 4) - (2f64).ln()).abs() < 1e-12);
    }
}
