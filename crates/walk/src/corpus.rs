//! Skip-gram pair extraction from walk corpora.

/// One (center, context) training pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipGramPair {
    pub center: u32,
    pub context: u32,
}

/// Extract all (center, context) pairs within `window` of each other in
/// every walk — the corpus the word2vec/SGNS stage trains on.
pub fn pairs_from_walks(walks: &[Vec<u32>], window: usize) -> Vec<SkipGramPair> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &center) in walk.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(walk.len());
            for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                if i != j {
                    pairs.push(SkipGramPair { center, context });
                }
            }
        }
    }
    pairs
}

/// Unigram frequencies of nodes in the corpus (the negative-sampling base
/// distribution before the ¾ power).
pub fn unigram_counts(walks: &[Vec<u32>], nodes: u32) -> Vec<u64> {
    let mut counts = vec![0u64; nodes as usize];
    for walk in walks {
        for &v in walk {
            counts[v as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_pairs() {
        let walks = vec![vec![1, 2, 3]];
        let pairs = pairs_from_walks(&walks, 1);
        assert_eq!(
            pairs,
            vec![
                SkipGramPair {
                    center: 1,
                    context: 2
                },
                SkipGramPair {
                    center: 2,
                    context: 1
                },
                SkipGramPair {
                    center: 2,
                    context: 3
                },
                SkipGramPair {
                    center: 3,
                    context: 2
                },
            ]
        );
        // Window 2 covers the ends too.
        assert_eq!(pairs_from_walks(&walks, 2).len(), 6);
    }

    #[test]
    fn short_walks_produce_no_pairs() {
        assert!(pairs_from_walks(&[vec![5]], 2).is_empty());
        assert!(pairs_from_walks(&[], 2).is_empty());
    }

    #[test]
    fn unigram_counts_tally() {
        let walks = vec![vec![0, 1, 1], vec![2]];
        assert_eq!(unigram_counts(&walks, 4), vec![1, 2, 1, 0]);
    }
}
