//! LINE (Tang et al., WWW'15) — the edge-sampling embedding model the
//! paper's introduction benchmarks ProNE against ("it would take weeks for
//! LINE … to learn embeddings for a graph with 100 M nodes").
//!
//! LINE skips random walks entirely: it samples *edges* proportional to
//! their weight (alias table over all edges) and trains with negative
//! sampling on first-order (endpoint ↔ endpoint) or second-order
//! (endpoint ↔ context vector) proximity.

use crate::alias::AliasTable;
use omega_graph::Csr;
use omega_linalg::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which proximity LINE optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOrder {
    /// First-order: direct neighbours should have similar vectors.
    First,
    /// Second-order: nodes with similar neighbourhoods should align (uses a
    /// separate context matrix, like SGNS).
    Second,
}

/// LINE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineConfig {
    pub dim: usize,
    pub order: LineOrder,
    /// Total edge samples (the model's unit of work).
    pub samples: usize,
    pub negatives: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 32,
            order: LineOrder::Second,
            samples: 200_000,
            negatives: 5,
            learning_rate: 0.025,
            seed: 0x11e,
        }
    }
}

/// The LINE trainer.
#[derive(Debug)]
pub struct LineModel {
    cfg: LineConfig,
    nodes: u32,
    vertex: Vec<f32>,
    context: Vec<f32>,
}

impl LineModel {
    pub fn new(nodes: u32, cfg: LineConfig) -> LineModel {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let vertex = (0..nodes as usize * cfg.dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / cfg.dim as f32)
            .collect();
        LineModel {
            cfg,
            nodes,
            vertex,
            context: vec![0.0; nodes as usize * cfg.dim],
        }
    }

    /// Train on a graph; returns the mean loss of the final 10% of samples.
    pub fn train(&mut self, g: &Csr) -> f32 {
        assert_eq!(g.rows(), self.nodes);
        // Edge alias table over all stored (directed) nnz.
        let mut edge_src = Vec::with_capacity(g.nnz());
        let mut edge_dst = Vec::with_capacity(g.nnz());
        let mut weights = Vec::with_capacity(g.nnz());
        for u in 0..g.rows() {
            let (cols, vals) = g.row(u);
            for (&v, &w) in cols.iter().zip(vals) {
                edge_src.push(u);
                edge_dst.push(v);
                weights.push(w);
            }
        }
        assert!(!weights.is_empty(), "graph has no edges");
        let edges = AliasTable::new(&weights);
        // Negative table over degree^0.75.
        let neg_weights: Vec<f32> = (0..g.rows())
            .map(|v| (g.degree(v) as f32).powf(0.75).max(1e-6))
            .collect();
        let negatives = AliasTable::new(&neg_weights);

        let d = self.cfg.dim;
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ TRAIN_SEED_TWEAK);
        let tail_start = self.cfg.samples - self.cfg.samples / 10;
        let mut tail_loss = 0f64;
        let mut tail_n = 0u64;

        for step in 0..self.cfg.samples {
            let lr =
                self.cfg.learning_rate * (1.0 - step as f32 / self.cfg.samples as f32).max(0.1);
            let e = edges.sample(&mut rng);
            let (u, v) = (edge_src[e] as usize, edge_dst[e] as usize);
            // Snapshot u's vector so target updates (which may alias u in
            // first-order mode) borrow cleanly.
            let uvec: Vec<f32> = self.vertex[u * d..(u + 1) * d].to_vec();
            let mut grad_u = vec![0f32; d];
            for neg in 0..=self.cfg.negatives {
                let (target, label) = if neg == 0 {
                    (v, 1.0f32)
                } else {
                    (negatives.sample(&mut rng), 0.0)
                };
                let tvec: &mut [f32] = match self.cfg.order {
                    LineOrder::First => &mut self.vertex[target * d..(target + 1) * d],
                    LineOrder::Second => &mut self.context[target * d..(target + 1) * d],
                };
                let mut dot = 0f32;
                for i in 0..d {
                    dot += uvec[i] * tvec[i];
                }
                let p = 1.0 / (1.0 + (-dot).exp());
                let gscale = (p - label) * lr;
                if step >= tail_start {
                    tail_loss += if label > 0.5 {
                        -(p.max(1e-7).ln()) as f64
                    } else {
                        -((1.0 - p).max(1e-7).ln()) as f64
                    };
                    tail_n += 1;
                }
                for i in 0..d {
                    grad_u[i] += gscale * tvec[i];
                    tvec[i] -= gscale * uvec[i];
                }
            }
            for (i, g) in grad_u.iter().enumerate() {
                self.vertex[u * d + i] -= g;
            }
        }
        (tail_loss / tail_n.max(1) as f64) as f32
    }

    /// The learned vertex embedding, `nodes × dim` rows.
    pub fn embedding(&self) -> DenseMatrix {
        DenseMatrix::from_row_major(self.nodes as usize, self.cfg.dim, &self.vertex)
            .expect("consistent shape")
    }
}

/// Decorrelates the training RNG from the initialisation RNG.
const TRAIN_SEED_TWEAK: u64 = 0x0001_111e;

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::SbmConfig;
    use omega_linalg::ops::cosine;

    fn community_gap(emb: &DenseMatrix, labels: &[u32]) -> f64 {
        let n = emb.rows();
        let mut same = 0.0;
        let mut cross = 0.0;
        let (mut ns, mut nc) = (0u32, 0u32);
        for u in (0..n).step_by(3) {
            for v in (1..n).step_by(7) {
                if u == v {
                    continue;
                }
                let c = cosine(&emb.row_copied(u), &emb.row_copied(v)) as f64;
                if labels[u] == labels[v] {
                    same += c;
                    ns += 1;
                } else {
                    cross += c;
                    nc += 1;
                }
            }
        }
        same / ns as f64 - cross / nc as f64
    }

    #[test]
    fn line_learns_communities() {
        let sbm = SbmConfig::assortative(150, 4);
        let g = sbm.generate_csr().unwrap();
        for order in [LineOrder::First, LineOrder::Second] {
            let mut model = LineModel::new(
                150,
                LineConfig {
                    dim: 16,
                    order,
                    samples: 120_000,
                    ..LineConfig::default()
                },
            );
            model.train(&g);
            let gap = community_gap(&model.embedding(), &sbm.labels());
            assert!(gap > 0.08, "{order:?} gap {gap} too small");
        }
    }

    #[test]
    fn more_samples_reduce_loss() {
        let sbm = SbmConfig::assortative(100, 2);
        let g = sbm.generate_csr().unwrap();
        let loss_at = |samples| {
            let mut m = LineModel::new(
                100,
                LineConfig {
                    samples,
                    ..LineConfig::default()
                },
            );
            m.train(&g)
        };
        assert!(loss_at(100_000) < loss_at(5_000));
    }

    #[test]
    fn deterministic() {
        let sbm = SbmConfig::assortative(60, 9);
        let g = sbm.generate_csr().unwrap();
        let run = || {
            let mut m = LineModel::new(
                60,
                LineConfig {
                    samples: 10_000,
                    ..LineConfig::default()
                },
            );
            m.train(&g);
            m.embedding()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn empty_graph_panics() {
        let g = omega_graph::GraphBuilder::new(3).build_csr().unwrap();
        LineModel::new(3, LineConfig::default()).train(&g);
    }
}
