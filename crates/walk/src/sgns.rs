//! Skip-gram with negative sampling (word2vec/DeepWalk's trainer).

use crate::alias::AliasTable;
use crate::corpus::SkipGramPair;
use omega_linalg::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SGNS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgnsConfig {
    pub dim: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed over epochs).
    pub learning_rate: f32,
    pub epochs: usize,
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            negatives: 5,
            learning_rate: 0.025,
            epochs: 2,
            seed: 0xdeed,
        }
    }
}

/// The two-matrix SGNS model (input/center and output/context vectors).
#[derive(Debug)]
pub struct SgnsModel {
    nodes: u32,
    cfg: SgnsConfig,
    input: Vec<f32>,
    output: Vec<f32>,
}

impl SgnsModel {
    /// Initialise with small random input vectors and zero output vectors
    /// (the word2vec convention).
    pub fn new(nodes: u32, cfg: SgnsConfig) -> SgnsModel {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let input = (0..nodes as usize * cfg.dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / cfg.dim as f32)
            .collect();
        SgnsModel {
            nodes,
            cfg,
            input,
            output: vec![0.0; nodes as usize * cfg.dim],
        }
    }

    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    #[inline]
    fn in_vec(&mut self, v: u32) -> &mut [f32] {
        let d = self.cfg.dim;
        &mut self.input[v as usize * d..(v as usize + 1) * d]
    }

    /// Train on a corpus of pairs with a ¾-power unigram negative table.
    /// Returns the mean loss of the final epoch.
    pub fn train(&mut self, pairs: &[SkipGramPair], unigram: &[u64]) -> f32 {
        assert_eq!(unigram.len(), self.nodes as usize);
        let weights: Vec<f32> = unigram
            .iter()
            .map(|&c| (c as f32).powf(0.75).max(1e-6))
            .collect();
        let negatives = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x5a5a);
        let d = self.cfg.dim;
        let mut last_loss = 0f32;

        for epoch in 0..self.cfg.epochs {
            let lr = self.cfg.learning_rate
                * (1.0 - epoch as f32 / self.cfg.epochs.max(1) as f32).max(0.1);
            let mut loss_sum = 0f64;
            for pair in pairs {
                let mut grad_in = vec![0f32; d];
                // Positive + negative updates against the center vector.
                let center = pair.center as usize;
                let targets: Vec<(u32, f32)> = std::iter::once((pair.context, 1.0))
                    .chain(
                        (0..self.cfg.negatives).map(|_| (negatives.sample(&mut rng) as u32, 0.0)),
                    )
                    .collect();
                for (target, label) in targets {
                    let t = target as usize;
                    let mut dot = 0f32;
                    for i in 0..d {
                        dot += self.input[center * d + i] * self.output[t * d + i];
                    }
                    let p = 1.0 / (1.0 + (-dot).exp());
                    let g = (p - label) * lr;
                    loss_sum += if label > 0.5 {
                        -(p.max(1e-7).ln()) as f64
                    } else {
                        -((1.0 - p).max(1e-7).ln()) as f64
                    };
                    for (i, gi) in grad_in.iter_mut().enumerate() {
                        *gi += g * self.output[t * d + i];
                        self.output[t * d + i] -= g * self.input[center * d + i];
                    }
                }
                let iv = self.in_vec(pair.center);
                for i in 0..d {
                    iv[i] -= grad_in[i];
                }
            }
            last_loss = (loss_sum / pairs.len().max(1) as f64) as f32;
        }
        last_loss
    }

    /// The learned (input) embedding matrix, `nodes × dim` rows.
    pub fn embedding(&self) -> DenseMatrix {
        DenseMatrix::from_row_major(self.nodes as usize, self.cfg.dim, &self.input)
            .expect("consistent shape")
    }

    /// CPU operations one pair costs (for the cost models of the
    /// distributed baselines): (1 + negatives) dot products + updates.
    pub fn ops_per_pair(cfg: &SgnsConfig) -> u64 {
        (1 + cfg.negatives as u64) * (4 * cfg.dim as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{pairs_from_walks, unigram_counts};
    use crate::walker::{WalkConfig, Walker};
    use omega_graph::SbmConfig;

    #[test]
    fn training_reduces_loss() {
        let sbm = SbmConfig::assortative(120, 4);
        let g = sbm.generate_csr().unwrap();
        let walker = Walker::new(&g, WalkConfig::deepwalk(4, 10, 2));
        let walks = walker.generate_all();
        let pairs = pairs_from_walks(&walks, 3);
        let unigram = unigram_counts(&walks, 120);

        let mut one = SgnsModel::new(
            120,
            SgnsConfig {
                epochs: 1,
                ..SgnsConfig::default()
            },
        );
        let loss1 = one.train(&pairs, &unigram);
        let mut five = SgnsModel::new(
            120,
            SgnsConfig {
                epochs: 5,
                ..SgnsConfig::default()
            },
        );
        let loss5 = five.train(&pairs, &unigram);
        assert!(
            loss5 < loss1,
            "more epochs should reduce loss: {loss5} !< {loss1}"
        );
    }

    #[test]
    fn embeddings_separate_sbm_communities() {
        let sbm = SbmConfig::assortative(120, 8);
        let g = sbm.generate_csr().unwrap();
        let labels = sbm.labels();
        let walker = Walker::new(&g, WalkConfig::deepwalk(6, 12, 3));
        let walks = walker.generate_all();
        let pairs = pairs_from_walks(&walks, 3);
        let unigram = unigram_counts(&walks, 120);
        let mut model = SgnsModel::new(
            120,
            SgnsConfig {
                dim: 16,
                epochs: 4,
                ..SgnsConfig::default()
            },
        );
        model.train(&pairs, &unigram);
        let emb = model.embedding();

        let mut same = 0f64;
        let mut cross = 0f64;
        let (mut ns, mut nc) = (0u32, 0u32);
        for u in (0..120).step_by(2) {
            for v in (1..120).step_by(5) {
                if u == v {
                    continue;
                }
                let cos = omega_linalg::ops::cosine(&emb.row_copied(u), &emb.row_copied(v)) as f64;
                if labels[u] == labels[v] {
                    same += cos;
                    ns += 1;
                } else {
                    cross += cos;
                    nc += 1;
                }
            }
        }
        let gap = same / ns as f64 - cross / nc as f64;
        assert!(gap > 0.1, "community separation gap {gap} too small");
    }

    #[test]
    fn deterministic_training() {
        let walks = vec![vec![0u32, 1, 2, 1, 0]; 10];
        let pairs = pairs_from_walks(&walks, 2);
        let unigram = unigram_counts(&walks, 3);
        let mut a = SgnsModel::new(3, SgnsConfig::default());
        let mut b = SgnsModel::new(3, SgnsConfig::default());
        a.train(&pairs, &unigram);
        b.train(&pairs, &unigram);
        assert_eq!(a.embedding(), b.embedding());
    }

    #[test]
    fn ops_per_pair_model() {
        let cfg = SgnsConfig {
            dim: 10,
            negatives: 5,
            ..SgnsConfig::default()
        };
        assert_eq!(SgnsModel::ops_per_pair(&cfg), 6 * 40);
    }
}
