//! Consistent-hash routing over the replica tier.
//!
//! Requests route by their node's *shard* (the fetch/cache granule), so
//! all traffic for one shard lands on the same replica and its hot cache
//! sees the full reuse — the same locality argument the sharded store
//! makes, lifted one level up. The ring is the classic
//! points-on-a-circle construction with virtual nodes: adding or removing
//! a replica moves only the arcs adjacent to its points.
//!
//! Hashes are SplitMix64 of `(replica, vnode)` and of the shard key —
//! pure functions of identity, never of scheduling, so routing is
//! byte-identical on any machine.

use crate::arrivals::splitmix64;

/// Domain-separation salts: ring points and routed keys must hash from
/// disjoint families, or a small key (shard ids start at 0) can collide
/// exactly with a small-vnode point and pin every shard to one replica.
const POINT_SALT: u64 = 0x9ae1_6a3b_2f90_404f;
const KEY_SALT: u64 = 0xe703_7ed1_a0b4_28db;

#[inline]
fn point_hash(seed: u64, replica: u32, vnode: u32) -> u64 {
    splitmix64(splitmix64(seed ^ POINT_SALT) ^ ((replica as u64) << 32 | vnode as u64))
}

#[inline]
fn key_hash(key: u64) -> u64 {
    splitmix64(key ^ KEY_SALT)
}

/// A consistent-hash ring of `replicas` replicas with `vnodes` virtual
/// points each.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, u32)>,
    replicas: u32,
}

impl Ring {
    pub fn new(replicas: u32, vnodes: u32, seed: u64) -> Ring {
        assert!(replicas > 0, "ring needs at least one replica");
        assert!(vnodes > 0, "ring needs at least one virtual node");
        let mut points: Vec<(u64, u32)> = (0..replicas)
            .flat_map(|r| (0..vnodes).map(move |v| (point_hash(seed, r, v), r)))
            .collect();
        points.sort_unstable();
        Ring { points, replicas }
    }

    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    fn successor_index(&self, hash: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < hash);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// The replica owning `key` (its hash's successor on the ring).
    pub fn primary(&self, key: u64) -> u32 {
        self.points[self.successor_index(key_hash(key))].1
    }

    /// The next *distinct* replica after the owner — the hedge target.
    /// With a single replica there is no alternative and the primary is
    /// returned.
    pub fn successor(&self, key: u64) -> u32 {
        let start = self.successor_index(key_hash(key));
        let owner = self.points[start].1;
        for step in 1..self.points.len() {
            let (_, r) = self.points[(start + step) % self.points.len()];
            if r != owner {
                return r;
            }
        }
        owner
    }

    /// The key's replica preference order: every distinct replica in ring
    /// order starting from the key's arc. `preference(key)[0]` is the
    /// primary, `[1]` the hedge successor; failure steering walks further
    /// down the list, so routing around an outage is a pure function of
    /// the ring and the set of live replicas — not of when the outage was
    /// noticed.
    pub fn preference(&self, key: u64) -> Vec<u32> {
        let start = self.successor_index(key_hash(key));
        let mut order = Vec::with_capacity(self.replicas as usize);
        let mut seen = vec![false; self.replicas as usize];
        for step in 0..self.points.len() {
            let (_, r) = self.points[(start + step) % self.points.len()];
            if !seen[r as usize] {
                seen[r as usize] = true;
                order.push(r);
                if order.len() == self.replicas as usize {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_in_range() {
        let ring = Ring::new(4, 16, 42);
        for key in 0..1000u64 {
            let p = ring.primary(key);
            assert!(p < 4);
            assert_eq!(p, ring.primary(key), "routing must be a pure function");
        }
    }

    #[test]
    fn successor_is_distinct_with_multiple_replicas() {
        let ring = Ring::new(4, 16, 7);
        for key in 0..1000u64 {
            assert_ne!(ring.primary(key), ring.successor(key));
        }
        let single = Ring::new(1, 16, 7);
        assert_eq!(single.primary(5), single.successor(5));
    }

    #[test]
    fn load_spreads_across_replicas() {
        let ring = Ring::new(4, 64, 3);
        let mut counts = [0u32; 4];
        for key in 0..10_000u64 {
            counts[ring.primary(key) as usize] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                (1_000..5_000).contains(&c),
                "replica {r} owns {c}/10000 keys"
            );
        }
    }

    #[test]
    fn small_keys_spread_across_replicas() {
        // Regression: shard ids are small consecutive integers; without
        // domain separation they collide with small-vnode points and all
        // route to one replica.
        for seed in [3, 7, 42] {
            let ring = Ring::new(4, 32, seed);
            let mut owners = [false; 4];
            for key in 0..16u64 {
                owners[ring.primary(key) as usize] = true;
            }
            let distinct = owners.iter().filter(|&&o| o).count();
            assert!(
                distinct >= 3,
                "seed {seed}: 16 shards on {distinct} replicas"
            );
        }
    }

    #[test]
    fn preference_lists_every_replica_and_agrees_with_primary_successor() {
        let ring = Ring::new(4, 16, 11);
        for key in 0..1000u64 {
            let pref = ring.preference(key);
            assert_eq!(pref.len(), 4);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "preference must be a permutation");
            assert_eq!(pref[0], ring.primary(key));
            assert_eq!(pref[1], ring.successor(key));
        }
        let single = Ring::new(1, 16, 11);
        assert_eq!(single.preference(9), vec![0]);
    }

    #[test]
    fn removing_a_replica_moves_only_its_keys() {
        // Consistency: keys owned by a surviving replica in the 4-ring
        // keep their owner in the 3-ring built from the same seed.
        let four = Ring::new(4, 64, 9);
        let three = Ring::new(3, 64, 9);
        let mut moved = 0u32;
        let mut kept = 0u32;
        for key in 0..10_000u64 {
            let owner = four.primary(key);
            if owner < 3 {
                if three.primary(key) == owner {
                    kept += 1;
                } else {
                    moved += 1;
                }
            }
        }
        assert!(
            kept > moved * 10,
            "consistent hashing must keep surviving arcs ({kept} kept, {moved} moved)"
        );
    }
}
