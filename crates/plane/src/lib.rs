//! # omega-plane — the admission-controlled request plane
//!
//! The serving stack in `omega-serve` answers a *closed-loop* stream: one
//! client, one [`EmbedServer`], the next request issued only after the
//! previous answer returns. Production traffic is nothing like that — it
//! is open-loop (users do not wait for each other), multi-tenant, bursty,
//! and pointed at a *tier* of replicas. This crate is that front half:
//!
//! * [`arrivals`] — seeded open-loop traffic: Poisson, diurnal and
//!   flash-crowd [`ArrivalProcess`]es per tenant, layered over the
//!   existing `workload::Popularity` skews; every request carries a
//!   tenant, a priority, and a simulated-ns deadline.
//! * [`admission`] — the front door: per-tenant token-bucket quotas with
//!   a high-priority overdraft, and priority-tiered queue-depth shedding,
//!   so queues stay bounded no matter the offered load.
//! * [`router`] — consistent-hash routing of shards onto replicas with a
//!   deterministic hedge to the ring successor when the primary's
//!   estimated wait is too long.
//! * [`engine`] — the round-based [`RequestPlane`]: a sequential front
//!   admits and routes each quantum of arrivals, then every replica runs
//!   its *own* event loop concurrently on the persistent `omega-par`
//!   pool (priority-ordered batches, deadline triage, `serve_batch`),
//!   and completions merge back in fixed `(sim_time, replica, seq)`
//!   order. Front-to-replica RPCs are charged through the shared
//!   [`NetModel`](omega_hetmem::NetModel) (the same link parameters the
//!   distributed baselines use); late work is dropped or degraded
//!   (halved `k` and `nprobe`, or a point lookup instead of a scan),
//!   never queued unboundedly. The degrade ladder and router price work
//!   from *live* replica signals — cost EWMAs corrected by real IVF
//!   probe counts and inflated by the measured cache miss rate — and
//!   [`Outage`] windows steer traffic around dead replicas until they
//!   recover.
//!
//! ## Determinism
//!
//! Same seed ⇒ byte-identical metrics JSONL at any wall-thread count.
//! Arrival and routing draws are keyed SplitMix64 streams over
//! `(seed, tenant, request index)` and `(replica, vnode)` — pure
//! functions of *what* is processed, never of scheduling. Each replica
//! lane reads only its own simulated state, its fault stream is keyed by
//! what it processes (never by which worker ran it), and the caller
//! merges lane events in a fixed total order before any counter or
//! histogram is touched — so the concurrent lanes (and the replicas'
//! worker pools, the [`ServeConfig::threads`] knob) change wall time
//! only. Every admitted request reaches exactly one terminal state, so
//! `admitted == completed + degraded + dropped` — the identity the
//! integration suite pins alongside golden metrics bytes.
//!
//! ```
//! use omega_hetmem::{MemSystem, SimDuration, Topology};
//! use omega_plane::{PlaneConfig, Priority, RequestPlane, TenantSpec};
//! use omega_serve::{Popularity, ServeConfig, WorkloadConfig};
//!
//! let emb = omega_embed::Embedding::from_row_major(256, 4, vec![0.5; 256 * 4]);
//! let systems: Vec<MemSystem> = (0..2)
//!     .map(|_| MemSystem::new(Topology::paper_machine_scaled(8 << 20)))
//!     .collect();
//! let cfg = PlaneConfig::new(2).horizon(SimDuration::from_secs_f64(0.01));
//! let mut plane = RequestPlane::new(&systems, &emb, ServeConfig::new(4096), cfg).unwrap();
//! let wl = WorkloadConfig::lookups(256, Popularity::Zipf { s: 1.0 }, 42);
//! let tenants = vec![
//!     TenantSpec::poisson("interactive", 2_000.0, wl).with_priority(Priority::High),
//!     TenantSpec::poisson("batch", 1_000.0, wl).with_priority(Priority::Low),
//! ];
//! let report = plane.run(&tenants);
//! assert!(report.stats.identity_holds());
//! assert_eq!(report.stats.offered, report.stats.admitted
//!     + report.stats.rejected_quota + report.stats.rejected_queue);
//! ```

pub mod admission;
pub mod arrivals;
pub mod engine;
pub mod router;

pub use admission::{Admission, TokenBucket, Verdict};
pub use arrivals::{generate_timeline, ArrivalProcess, PlaneRequest, Priority, TenantSpec};
pub use engine::{Outage, PlaneConfig, PlaneReport, PlaneStats, PlaneTrace, RequestPlane};
pub use router::Ring;

// Doc-link anchors used by the crate docs above.
#[allow(unused_imports)]
use omega_serve::{EmbedServer, ServeConfig};
