//! Admission control: per-tenant token-bucket quotas and priority-aware
//! queue-depth shedding.
//!
//! The front door admits or rejects every arrival *at its arrival
//! instant* — rejected work never touches a queue, which is what keeps
//! queues bounded under overload. Two gates, in order:
//!
//! 1. **Quota** — a token bucket per tenant (refill `quota_qps`, capacity
//!    `burst`). High-priority tenants may overdraw up to one extra burst,
//!    so a misbehaving bulk tenant exhausts its own bucket before it can
//!    starve an interactive one.
//! 2. **Queue depth** — the routed replica's queue has a hard bound, with
//!    priority-tiered thresholds: low-priority work is shed first (at ¾
//!    of the bound), normal at ⅞, and only high-priority requests may
//!    fill the final eighth.
//!
//! All arithmetic is fixed-order IEEE f64 and integer comparison on
//! simulated instants — deterministic on any machine.

use crate::arrivals::Priority;

/// Why an arrival was or was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Admitted,
    /// The tenant's token bucket was empty (and overdraft, if any, spent).
    RejectedQuota,
    /// The routed replica's queue was at this priority's depth threshold.
    RejectedQueue,
}

/// A deterministic token bucket over simulated time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens added per simulated nanosecond.
    rate_per_ns: f64,
    /// Capacity: tokens never accumulate beyond this.
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling at `quota_qps` requests per simulated second,
    /// starting full at `burst` tokens.
    pub fn new(quota_qps: f64, burst: f64) -> TokenBucket {
        assert!(quota_qps > 0.0, "quota must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        TokenBucket {
            rate_per_ns: quota_qps * 1e-9,
            burst,
            tokens: burst,
            last_ns: 0,
        }
    }

    /// Refill up to `now_ns` (arrivals are processed in time order, so
    /// `now_ns` never runs backwards).
    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        self.tokens = (self.tokens + dt as f64 * self.rate_per_ns).min(self.burst);
    }

    /// Take one token at `now_ns` if the balance (plus `overdraft`) covers
    /// it. The overdraft lets high-priority work run the balance negative
    /// — the debt is repaid by refill before any further admission.
    pub fn try_take(&mut self, now_ns: u64, overdraft: f64) -> bool {
        self.refill(now_ns);
        if self.tokens + overdraft >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current balance (after refilling to `now_ns`); may be negative
    /// while a high-priority overdraft is being repaid.
    pub fn balance(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }
}

/// The admission front: one bucket per tenant plus the queue-depth policy.
#[derive(Debug)]
pub struct Admission {
    buckets: Vec<TokenBucket>,
    /// Hard bound on any replica queue.
    max_queue: usize,
}

impl Admission {
    pub fn new(quotas: &[(f64, f64)], max_queue: usize) -> Admission {
        assert!(max_queue > 0, "queue bound must be positive");
        Admission {
            buckets: quotas
                .iter()
                .map(|&(qps, burst)| TokenBucket::new(qps, burst))
                .collect(),
            max_queue,
        }
    }

    /// Depth at which this priority stops being admitted.
    pub fn depth_limit(&self, priority: Priority) -> usize {
        match priority {
            Priority::High => self.max_queue,
            Priority::Normal => self.max_queue - self.max_queue / 8,
            Priority::Low => self.max_queue - self.max_queue / 4,
        }
    }

    /// Admission decision for one arrival: tenant quota first, then the
    /// routed replica's queue depth against the priority's threshold.
    pub fn admit(
        &mut self,
        tenant: usize,
        priority: Priority,
        now_ns: u64,
        queue_depth: usize,
    ) -> Verdict {
        let bucket = &mut self.buckets[tenant];
        let overdraft = if priority == Priority::High {
            bucket.burst
        } else {
            0.0
        };
        if !bucket.try_take(now_ns, overdraft) {
            return Verdict::RejectedQuota;
        }
        if queue_depth >= self.depth_limit(priority) {
            return Verdict::RejectedQueue;
        }
        Verdict::Admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(1000.0, 4.0);
        for _ in 0..4 {
            assert!(b.try_take(0, 0.0));
        }
        assert!(!b.try_take(0, 0.0));
        // 1 ms at 1000 qps refills exactly one token.
        assert!(b.try_take(1_000_000, 0.0));
        assert!(!b.try_take(1_000_000, 0.0));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1_000_000.0, 2.0);
        // A long idle period must not bank more than `burst` tokens.
        assert!(b.try_take(1_000_000_000, 0.0));
        assert!(b.try_take(1_000_000_000, 0.0));
        assert!(!b.try_take(1_000_000_000, 0.0));
    }

    #[test]
    fn overdraft_admits_then_repays() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(0, 0.0));
        assert!(b.try_take(0, 0.0));
        // Empty: normal work is refused, overdraft still admits.
        assert!(!b.try_take(0, 0.0));
        assert!(b.try_take(0, 2.0));
        assert!(b.try_take(0, 2.0));
        assert!(!b.try_take(0, 2.0));
        assert!(b.balance(0) < 0.0, "overdraft must leave a debt");
        // The debt is repaid before normal admission resumes: one token
        // (1 ms) only brings the balance to -1.
        assert!(!b.try_take(1_000_000, 0.0));
        assert!(b.try_take(3_000_000, 0.0));
    }

    #[test]
    fn queue_thresholds_order_by_priority() {
        let adm = Admission::new(&[(1000.0, 8.0)], 64);
        assert_eq!(adm.depth_limit(Priority::High), 64);
        assert_eq!(adm.depth_limit(Priority::Normal), 56);
        assert_eq!(adm.depth_limit(Priority::Low), 48);
    }

    #[test]
    fn admit_orders_quota_before_queue() {
        let mut adm = Admission::new(&[(1000.0, 1.0)], 8);
        assert_eq!(adm.admit(0, Priority::Normal, 0, 0), Verdict::Admitted);
        // Bucket now empty: quota rejection wins even with a free queue.
        assert_eq!(adm.admit(0, Priority::Normal, 0, 0), Verdict::RejectedQuota);
        // Refilled but the queue is at the normal threshold (8 - 1 = 7).
        assert_eq!(
            adm.admit(0, Priority::Normal, 1_000_000, 7),
            Verdict::RejectedQueue
        );
        // High priority may use the final slots (and the overdraft).
        assert_eq!(
            adm.admit(0, Priority::High, 1_000_000, 7),
            Verdict::Admitted
        );
    }
}
