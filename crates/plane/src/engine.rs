//! The request-plane engine: an event-driven simulation that feeds the
//! open-loop timeline through admission, routing, and a tier of
//! [`EmbedServer`] replicas.
//!
//! ## Event loop
//!
//! Two event kinds interleave on the simulated clock: *arrivals* (from the
//! pre-generated timeline) and *dispatches* (a replica with queued work
//! becoming free). Arrivals win ties, so under load a replica's queue
//! accumulates into real batches before the dispatch fires — at low load
//! every request dispatches alone. The loop is strictly sequential and
//! every decision is a function of simulated state only; wall-thread count
//! (the [`ServeConfig::threads`] knob each replica inherits) changes
//! nothing but wall time.
//!
//! ## Deadline scheduling
//!
//! At dispatch each request's remaining slack (`deadline − now`) is
//! compared against the replica's running cost estimates:
//!
//! * no slack at all → **dropped** (the late answer would be useless work);
//! * a top-k whose full scan cannot finish in time degrades down a ladder
//!   — halved `k` (smaller response on the wire) if the scan nearly fits,
//!   else a **point lookup** of the query node if that fits;
//! * otherwise the request runs at full fidelity.
//!
//! Dropping and degrading *at dispatch* is what bounds the served-request
//! tail: a request is never served later than `deadline + one estimate
//! error`, and queues never hold work that already missed its deadline.
//!
//! Every admitted request reaches exactly one terminal state, giving the
//! counter identity the integration tests pin:
//! `admitted == completed + degraded + dropped`.

use crate::admission::{Admission, Verdict};
use crate::arrivals::{generate_timeline, PlaneRequest, TenantSpec};
use crate::router::Ring;
use omega_embed::Embedding;
use omega_hetmem::{MemSystem, NetModel, SimDuration};
use omega_obs::{percentile_u64, Recorder, Track};
use omega_serve::{pool, EmbedServer, Request, RequestKind, ServeConfig};

/// Simulated wire size of one routed request (ids, kind, deadline, tenant).
const REQ_BYTES: u64 = 32;

/// Starting cost estimates (ns) before a replica has served anything —
/// quickly overwritten by the running averages.
const EST_GET_PRIOR_NS: u64 = 100_000;
const EST_TOPK_PRIOR_NS: u64 = 1_000_000;

/// Configuration of a [`RequestPlane`].
#[derive(Debug, Clone, Copy)]
pub struct PlaneConfig {
    /// Number of serving replicas.
    pub replicas: usize,
    /// Virtual nodes per replica on the consistent-hash ring.
    pub vnodes: u32,
    /// Seed of every plane-level draw (arrivals, ring placement).
    pub seed: u64,
    /// Arrivals are generated over `[0, horizon)`; dispatch continues
    /// until every queue drains.
    pub horizon: SimDuration,
    /// Most requests dispatched to a replica in one batch.
    pub batch_size: usize,
    /// Hard bound on any replica queue (admission sheds beyond
    /// priority-tiered fractions of this).
    pub max_queue: usize,
    /// Estimated queue wait (ns) beyond which an arrival is hedged to the
    /// ring successor instead of its primary replica.
    pub hedge_wait_ns: u64,
    /// The shared cluster link model charging front-to-replica RPCs.
    pub net: NetModel,
}

impl PlaneConfig {
    /// Defaults: 2 replicas × 32 vnodes, 1 s horizon, 32-deep batches,
    /// 256-deep queues, hedge past 2 ms of estimated wait, 25 GbE links.
    pub fn new(replicas: usize) -> PlaneConfig {
        PlaneConfig {
            replicas,
            vnodes: 32,
            seed: 42,
            horizon: SimDuration::from_secs_f64(1.0),
            batch_size: 32,
            max_queue: 256,
            hedge_wait_ns: 2_000_000,
            net: NetModel::datacenter_25gbe(),
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    pub fn max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    pub fn hedge_wait_ns(mut self, ns: u64) -> Self {
        self.hedge_wait_ns = ns;
        self
    }

    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }
}

/// Terminal-state and verdict counters, kept both globally and per tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Arrivals presented to the front door.
    pub offered: u64,
    /// Arrivals past both admission gates. Every admitted request ends in
    /// exactly one of `completed`, `degraded`, `dropped`.
    pub admitted: u64,
    pub rejected_quota: u64,
    pub rejected_queue: u64,
    /// Served at full fidelity.
    pub completed: u64,
    /// Served with reduced fidelity (`degraded_reduced_k + degraded_to_get`).
    pub degraded: u64,
    pub degraded_reduced_k: u64,
    pub degraded_to_get: u64,
    /// Abandoned at dispatch: the deadline had already passed.
    pub dropped: u64,
    /// Arrivals routed to the ring successor instead of the loaded primary.
    pub hedged_routes: u64,
    /// Served requests whose completion still missed the deadline (the
    /// estimate was wrong); they remain `completed`/`degraded`.
    pub slo_miss: u64,
}

impl PlaneStats {
    /// The terminal-state identity every run must satisfy.
    pub fn identity_holds(&self) -> bool {
        self.offered == self.admitted + self.rejected_quota + self.rejected_queue
            && self.admitted == self.completed + self.degraded + self.dropped
            && self.degraded == self.degraded_reduced_k + self.degraded_to_get
    }
}

/// Result of [`RequestPlane::run`].
#[derive(Debug, Clone)]
pub struct PlaneReport {
    pub stats: PlaneStats,
    /// Per-tenant slice of the same counters, tenant-table order.
    pub per_tenant: Vec<PlaneStats>,
    /// Arrival→completion latency (ns) of every *served* request
    /// (completed or degraded), in dispatch order.
    pub latency_ns: Vec<u64>,
    /// Dispatch wait (ns) of every served request, in dispatch order.
    pub queue_wait_ns: Vec<u64>,
    /// The arrival horizon the run was configured with.
    pub horizon: SimDuration,
    /// Simulated instant the last served request completed.
    pub end_ns: u64,
}

impl PlaneReport {
    /// Nearest-rank percentile of served-request latency.
    pub fn latency_percentile_ns(&self, q: f64) -> u64 {
        percentile_u64(&self.latency_ns, q)
    }

    /// Nearest-rank percentile of dispatch wait.
    pub fn queue_wait_percentile_ns(&self, q: f64) -> u64 {
        percentile_u64(&self.queue_wait_ns, q)
    }

    /// Served requests (completed + degraded) per simulated second of the
    /// whole run (arrival horizon or last completion, whichever is later).
    pub fn served_qps(&self) -> f64 {
        let end_s = (self.horizon.as_nanos().max(self.end_ns)) as f64 * 1e-9;
        if end_s == 0.0 {
            0.0
        } else {
            (self.stats.completed + self.stats.degraded) as f64 / end_s
        }
    }

    /// Full-fidelity, in-deadline completions per simulated second — the
    /// number the throughput-vs-p99 curve plots.
    pub fn goodput_qps(&self) -> f64 {
        let end_s = (self.horizon.as_nanos().max(self.end_ns)) as f64 * 1e-9;
        let good = (self.stats.completed + self.stats.degraded).saturating_sub(self.stats.slo_miss);
        if end_s == 0.0 {
            0.0
        } else {
            good as f64 / end_s
        }
    }
}

/// A request sitting in a replica queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    /// Global arrival ordinal — the dispatch tie-breaker after priority.
    seq: u64,
    req: PlaneRequest,
}

/// Per-replica running cost estimates (EWMA, ¾ old + ¼ new, u64 ns).
#[derive(Debug, Clone, Copy)]
struct CostEst {
    get_ns: u64,
    topk_ns: u64,
    any_ns: u64,
}

impl CostEst {
    fn update(est: &mut u64, sample: u64) {
        *est = (*est * 3 + sample) / 4;
    }
}

/// The admission-controlled request plane over N replicas.
pub struct RequestPlane {
    cfg: PlaneConfig,
    servers: Vec<EmbedServer>,
    ring: Ring,
    rec: Recorder,
}

impl RequestPlane {
    /// Stand up `cfg.replicas` servers, one per provided [`MemSystem`]
    /// (callers install per-replica fault plans on those systems first —
    /// the servers' retry/hedge/degrade machinery reacts to whatever the
    /// plans inject). Every replica holds a full copy of the table.
    pub fn new(
        systems: &[MemSystem],
        emb: &Embedding,
        serve_cfg: ServeConfig,
        cfg: PlaneConfig,
    ) -> omega_hetmem::Result<RequestPlane> {
        assert!(cfg.replicas > 0, "plane needs at least one replica");
        assert_eq!(
            systems.len(),
            cfg.replicas,
            "one MemSystem per replica required"
        );
        let servers = systems
            .iter()
            .map(|sys| EmbedServer::new(sys, emb, serve_cfg))
            .collect::<omega_hetmem::Result<Vec<_>>>()?;
        Ok(RequestPlane {
            ring: Ring::new(cfg.replicas as u32, cfg.vnodes, cfg.seed),
            cfg,
            servers,
            rec: Recorder::disabled(),
        })
    }

    /// Instrument the plane: replica `r`'s serving spans land on track
    /// `(pid = r + 1, tid = 0)`; plane verdicts/latency metrics go to the
    /// recorder's registry.
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.rec = rec.clone();
        self.servers = self
            .servers
            .drain(..)
            .enumerate()
            .map(|(r, srv)| {
                let track = Track::new(r as u32 + 1, 0);
                rec.set_track_name(track, &format!("replica {r}"));
                srv.with_recorder(rec, track)
            })
            .collect();
        self
    }

    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    pub fn servers(&self) -> &[EmbedServer] {
        &self.servers
    }

    /// Estimated wait (ns) a request joining replica `r` at `now_ns`
    /// would see: residual busy time plus the queue ahead of it priced at
    /// the replica's average request cost.
    fn est_wait(
        &self,
        r: usize,
        now_ns: u64,
        ready_at: &[u64],
        depth: usize,
        est: &CostEst,
    ) -> u64 {
        ready_at[r].saturating_sub(now_ns) + depth as u64 * est.any_ns
    }

    /// Run the open-loop timeline of `tenants` through the plane.
    pub fn run(&mut self, tenants: &[TenantSpec]) -> PlaneReport {
        let timeline = generate_timeline(self.cfg.seed, tenants, self.cfg.horizon.as_nanos());
        let quotas: Vec<(f64, f64)> = tenants.iter().map(|t| (t.quota_qps, t.burst)).collect();
        let mut admission = Admission::new(&quotas, self.cfg.max_queue);

        let nr = self.cfg.replicas;
        let mut queues: Vec<Vec<Queued>> = vec![Vec::new(); nr];
        let mut ready_at: Vec<u64> = vec![0; nr];
        let mut est: Vec<CostEst> = vec![
            CostEst {
                get_ns: EST_GET_PRIOR_NS,
                topk_ns: EST_TOPK_PRIOR_NS,
                any_ns: (EST_GET_PRIOR_NS + EST_TOPK_PRIOR_NS) / 2,
            };
            nr
        ];

        let mut stats = PlaneStats::default();
        let mut per_tenant = vec![PlaneStats::default(); tenants.len()];
        let mut latency_ns: Vec<u64> = Vec::new();
        let mut queue_wait_ns: Vec<u64> = Vec::new();
        let mut end_ns: u64 = 0;

        let dim = self.servers[0].store().dim();
        // The halved-fidelity probe count when replicas serve through an
        // IVF index: the degrade ladder's halved-k tier also halves
        // nprobe, so the degraded scan really does cost about half
        // (an exact scan at halved k only shrinks the response).
        let ivf_half_nprobe: Option<usize> =
            self.servers[0].ivf().map(|ivf| (ivf.nprobe() / 2).max(1));
        let resp_bytes = |kind: RequestKind| -> u64 {
            match kind {
                RequestKind::Get => (dim * 4) as u64,
                RequestKind::TopK { k, .. } => 16 + 8 * k as u64,
            }
        };

        let mut ai = 0usize; // next timeline arrival
        loop {
            // Earliest possible dispatch: a replica with queued work, at
            // the later of its free instant and its earliest queued
            // arrival. Ties break by replica index.
            let mut dispatch: Option<(u64, usize)> = None;
            for (r, q) in queues.iter().enumerate() {
                if let Some(earliest) = q.iter().map(|x| x.req.arrival_ns).min() {
                    let t = ready_at[r].max(earliest);
                    // `is_none_or` needs rust >= 1.82; stay on a match.
                    let better = match dispatch {
                        None => true,
                        Some((bt, br)) => (t, r) < (bt, br),
                    };
                    if better {
                        dispatch = Some((t, r));
                    }
                }
            }
            let next_arrival = timeline.get(ai).map(|r| r.arrival_ns);

            // Arrivals win ties so batches build up while a replica is
            // busy; with no arrival pending, the earliest dispatch fires.
            let take_arrival = match (next_arrival, dispatch) {
                (Some(na), Some((t, _))) => na <= t,
                (Some(_), None) => true,
                (None, _) => false,
            };

            if take_arrival {
                let req = timeline[ai];
                let seq = ai as u64;
                ai += 1;
                let now = req.arrival_ns;
                let ti = req.tenant as usize;
                stats.offered += 1;
                per_tenant[ti].offered += 1;

                // Route by the node's shard so one shard's traffic always
                // hits the same hot cache; hedge to the ring successor
                // when the primary's estimated wait is past the knob and
                // the successor (plus its extra forward hop) looks better.
                let shard = self.servers[0].store().shard_of(req.request.node) as u64;
                let primary = self.ring.primary(shard) as usize;
                let mut replica = primary;
                if nr > 1 {
                    let wait_p = self.est_wait(
                        primary,
                        now,
                        &ready_at,
                        queues[primary].len(),
                        &est[primary],
                    );
                    if wait_p > self.cfg.hedge_wait_ns {
                        let succ = self.ring.successor(shard) as usize;
                        let hop = self.cfg.net.forward_time(REQ_BYTES).as_nanos();
                        let wait_s =
                            self.est_wait(succ, now, &ready_at, queues[succ].len(), &est[succ]);
                        if wait_s + hop < wait_p {
                            replica = succ;
                            stats.hedged_routes += 1;
                            per_tenant[ti].hedged_routes += 1;
                        }
                    }
                }

                match admission.admit(ti, req.priority, now, queues[replica].len()) {
                    Verdict::Admitted => {
                        stats.admitted += 1;
                        per_tenant[ti].admitted += 1;
                        self.rec
                            .observe("plane.queue.depth", queues[replica].len() as f64);
                        queues[replica].push(Queued { seq, req });
                    }
                    Verdict::RejectedQuota => {
                        stats.rejected_quota += 1;
                        per_tenant[ti].rejected_quota += 1;
                    }
                    Verdict::RejectedQueue => {
                        stats.rejected_queue += 1;
                        per_tenant[ti].rejected_queue += 1;
                    }
                }
                continue;
            }

            let Some((t, r)) = dispatch else { break };

            // Build the batch: highest priority first, then arrival order.
            queues[r].sort_unstable_by_key(|q| (q.req.priority, q.seq));
            let take = queues[r].len().min(self.cfg.batch_size);
            let picked: Vec<Queued> = queues[r].drain(..take).collect();

            // Deadline gate + degrade ladder against the replica's running
            // cost estimates.
            let mut batch: Vec<Request> = Vec::with_capacity(picked.len());
            let mut meta: Vec<(Queued, bool)> = Vec::with_capacity(picked.len());
            for q in picked {
                let ti = q.req.tenant as usize;
                let slack = q.req.deadline_ns.saturating_sub(t);
                if slack == 0 {
                    stats.dropped += 1;
                    per_tenant[ti].dropped += 1;
                    continue;
                }
                let (request, degraded) = match q.req.request.kind {
                    RequestKind::Get => (q.req.request, false),
                    RequestKind::TopK { k, nprobe } => {
                        if est[r].topk_ns <= slack {
                            (q.req.request, false)
                        } else if est[r].topk_ns / 2 <= slack {
                            // The scan nearly fits: halve k, and on an
                            // IVF replica halve the probe count with it —
                            // exact replicas only shrink the response on
                            // the wire, IVF replicas really halve the
                            // scanned lists.
                            let k = (k / 2).max(1);
                            let nprobe = nprobe.map(|p| (p / 2).max(1)).or(ivf_half_nprobe);
                            stats.degraded_reduced_k += 1;
                            per_tenant[ti].degraded_reduced_k += 1;
                            (
                                Request {
                                    node: q.req.request.node,
                                    kind: RequestKind::TopK { k, nprobe },
                                },
                                true,
                            )
                        } else if est[r].get_ns <= slack {
                            // Only a point lookup fits: answer with the
                            // query node's own vector.
                            stats.degraded_to_get += 1;
                            per_tenant[ti].degraded_to_get += 1;
                            (
                                Request {
                                    node: q.req.request.node,
                                    kind: RequestKind::Get,
                                },
                                true,
                            )
                        } else {
                            stats.dropped += 1;
                            per_tenant[ti].dropped += 1;
                            continue;
                        }
                    }
                };
                batch.push(request);
                meta.push((q, degraded));
            }
            if batch.is_empty() {
                continue;
            }

            let sim_before = self.servers[r].sim_now();
            // Wall-clock attribution only: the replica's own phases
            // ("fetch"/"lookup"/"topk") override inside, so "dispatch"
            // catches the batch's residual serve wall time.
            let result = pool::phase_scope("dispatch", || self.servers[r].serve_batch(&batch));
            let batch_sim = self.servers[r].sim_now() - sim_before;
            ready_at[r] = t + batch_sim.as_nanos();

            for (j, (q, degraded)) in meta.iter().enumerate() {
                let ti = q.req.tenant as usize;
                let rpc = self
                    .cfg
                    .net
                    .rpc_time(REQ_BYTES, resp_bytes(batch[j].kind))
                    .as_nanos();
                let completion = t + result.sim_latency_ns[j] + rpc;
                let service = completion - t;
                let wait = t - q.req.arrival_ns;
                let latency = completion - q.req.arrival_ns;
                end_ns = end_ns.max(completion);

                match batch[j].kind {
                    RequestKind::Get => CostEst::update(&mut est[r].get_ns, service),
                    RequestKind::TopK { .. } => CostEst::update(&mut est[r].topk_ns, service),
                }
                CostEst::update(&mut est[r].any_ns, service);

                if *degraded {
                    stats.degraded += 1;
                    per_tenant[ti].degraded += 1;
                } else {
                    stats.completed += 1;
                    per_tenant[ti].completed += 1;
                }
                if completion > q.req.deadline_ns {
                    stats.slo_miss += 1;
                    per_tenant[ti].slo_miss += 1;
                }
                latency_ns.push(latency);
                queue_wait_ns.push(wait);
                self.rec.observe("plane.latency_ns", latency as f64);
                self.rec.observe("plane.queue.wait_ns", wait as f64);
            }
        }

        let report = PlaneReport {
            stats,
            per_tenant,
            latency_ns,
            queue_wait_ns,
            horizon: self.cfg.horizon,
            end_ns,
        };
        self.publish(&report, tenants);
        debug_assert!(report.stats.identity_holds(), "terminal-state identity");
        report
    }

    /// Publish the run's verdict counters and goodput through the
    /// recorder's registry (BTreeMap-backed, so export order — and the
    /// metrics JSONL bytes — is deterministic).
    fn publish(&self, report: &PlaneReport, tenants: &[TenantSpec]) {
        let s = &report.stats;
        self.rec.counter_set("plane.offered", s.offered);
        self.rec.counter_set("plane.admitted", s.admitted);
        self.rec
            .counter_set("plane.rejected.quota", s.rejected_quota);
        self.rec
            .counter_set("plane.rejected.queue", s.rejected_queue);
        self.rec.counter_set("plane.completed", s.completed);
        self.rec.counter_set("plane.degraded", s.degraded);
        self.rec
            .counter_set("plane.degraded.reduced_k", s.degraded_reduced_k);
        self.rec
            .counter_set("plane.degraded.to_get", s.degraded_to_get);
        self.rec.counter_set("plane.dropped", s.dropped);
        self.rec.counter_set("plane.hedged_routes", s.hedged_routes);
        self.rec.counter_set("plane.slo_miss", s.slo_miss);
        self.rec
            .gauge_set("plane.goodput_qps", report.goodput_qps());
        self.rec.gauge_set("plane.served_qps", report.served_qps());
        for (ti, t) in tenants.iter().enumerate() {
            let p = &report.per_tenant[ti];
            let name = &t.name;
            self.rec
                .counter_set(&format!("plane.tenant.{name}.offered"), p.offered);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.admitted"), p.admitted);
            self.rec.counter_set(
                &format!("plane.tenant.{name}.rejected"),
                p.rejected_quota + p.rejected_queue,
            );
            self.rec
                .counter_set(&format!("plane.tenant.{name}.completed"), p.completed);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.degraded"), p.degraded);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.dropped"), p.dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Priority};
    use omega_hetmem::{MemSystem, Topology};
    use omega_serve::{Popularity, WorkloadConfig};

    fn small_plane(replicas: usize, rate: f64) -> (RequestPlane, Vec<TenantSpec>) {
        let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
        let systems: Vec<MemSystem> = (0..replicas)
            .map(|_| MemSystem::new(Topology::paper_machine_scaled(8 << 20)))
            .collect();
        let serve_cfg = ServeConfig::new(8 << 10).rows_per_shard(32).batch_size(16);
        let cfg = PlaneConfig::new(replicas)
            .seed(7)
            .horizon(SimDuration::from_secs_f64(0.05));
        let plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg).unwrap();
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.2, 8);
        let tenants = vec![
            TenantSpec::poisson("interactive", rate * 0.6, wl).with_priority(Priority::High),
            TenantSpec::poisson("batch", rate * 0.4, wl).with_priority(Priority::Low),
        ];
        (plane, tenants)
    }

    #[test]
    fn identity_holds_at_low_load() {
        let (mut plane, tenants) = small_plane(2, 2_000.0);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        assert!(report.stats.offered > 0);
        assert!(report.stats.completed > 0);
        assert_eq!(
            report.latency_ns.len() as u64,
            report.stats.completed + report.stats.degraded
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut a, tenants) = small_plane(2, 20_000.0);
        let (mut b, _) = small_plane(2, 20_000.0);
        let ra = a.run(&tenants);
        let rb = b.run(&tenants);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.latency_ns, rb.latency_ns);
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        // Offered load far past the quota, with an SLO tight enough that
        // queued top-k work degrades or drops at dispatch.
        let (mut plane, mut tenants) = small_plane(1, 400_000.0);
        for t in &mut tenants {
            *t = t
                .clone()
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(300_000);
        }
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        let shed = report.stats.rejected_quota
            + report.stats.rejected_queue
            + report.stats.dropped
            + report.stats.degraded;
        assert!(shed > 0, "overload must shed work: {:?}", report.stats);
        // Served requests dispatch within ~a deadline of arriving, so the
        // served p99 stays bounded even though offered load is unbounded.
        let p99 = report.latency_percentile_ns(0.99);
        let deadline = tenants[0].deadline_ns;
        assert!(
            p99 < 4 * deadline,
            "served p99 {p99} ns should stay within a few deadlines ({deadline} ns)"
        );
    }

    #[test]
    fn flash_crowd_trips_admission() {
        let (mut plane, mut tenants) = small_plane(1, 1_000.0);
        tenants[1] = tenants[1].clone().with_process(ArrivalProcess::FlashCrowd {
            base_rate_per_s: 400.0,
            spike_rate_per_s: 600_000.0,
            spike_start_s: 0.01,
            spike_len_s: 0.02,
        });
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds());
        assert!(
            report.per_tenant[1].rejected_quota > 0,
            "the flash crowd must exhaust its quota: {:?}",
            report.per_tenant[1]
        );
        // The high-priority tenant keeps the bulk of its traffic served.
        let t0 = &report.per_tenant[0];
        assert!(
            (t0.completed + t0.degraded) * 10 > t0.offered * 8,
            "interactive tenant starved: {t0:?}"
        );
    }

    #[test]
    fn replicas_spread_work() {
        let (mut plane, tenants) = small_plane(4, 50_000.0);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds());
        let served: Vec<u64> = plane.servers().iter().map(|s| s.stats().requests).collect();
        assert!(served.iter().filter(|&&n| n > 0).count() >= 3, "{served:?}");
    }
}
