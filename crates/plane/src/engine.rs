//! The request-plane engine: an event-driven simulation that feeds the
//! open-loop timeline through admission, routing, and a tier of
//! [`EmbedServer`] replicas — with each replica running its own event
//! loop concurrently on the persistent `omega-par` pool.
//!
//! ## Round-based event loop
//!
//! Simulated time advances in fixed *quanta* ([`PlaneConfig::quantum_ns`]).
//! Each round has three strictly ordered stages:
//!
//! 1. **Front (sequential).** Every arrival inside the round is admitted,
//!    routed by its node's shard on the consistent-hash ring, and appended
//!    to its replica's ordered dispatch stream. Arrivals are a pure
//!    function of `(seed, tenant, index)`; admission and routing decide
//!    against a *virtual* per-replica gauge (free instant, queue depth,
//!    priced backlog) reset from replica truth at the top of the round.
//! 2. **Replica lanes (concurrent).** Each [`ReplicaLane`] drains its own
//!    queue up to the round boundary: batch formation, deadline triage,
//!    and `serve_batch` run per replica with per-replica `ThreadMem`
//!    contexts. Every decision a lane makes reads only its own simulated
//!    state, and its fault stream is keyed by what *it* processes
//!    (replica id via its own `MemSystem`, dispatch index via the
//!    server's request ordinals) — never by which worker thread ran it.
//! 3. **Merge (sequential).** Lane completion events merge back in fixed
//!    `(sim_time, replica, seq)` order before any counter or histogram is
//!    touched, so sim clocks, fault schedules and the metrics JSONL are
//!    byte-identical at any wall-thread count.
//!
//! Once the timeline is exhausted the final round runs with an unbounded
//! limit and drains every queue.
//!
//! ## Closed admission loop
//!
//! The degrade ladder and the router price work from *live* per-replica
//! signals instead of static priors: an EWMA over completed-request cost,
//! corrected by the serve tier's real IVF probe accounting (a replica
//! that has been probing half-width lists has its full-scan cost scaled
//! back up), and inflated by the replica's measured cache miss rate (a
//! cold cache makes every estimate pessimistic). See
//! [`ServeSignals`](omega_serve::ServeSignals).
//!
//! ## Deadline scheduling
//!
//! At dispatch each request's remaining slack (`deadline − now`) is
//! compared against the replica's live cost estimates:
//!
//! * no slack at all → **dropped** (the late answer would be useless work);
//! * a top-k whose full scan cannot finish in time degrades down a ladder
//!   — halved `k` and halved `nprobe` if the scan nearly fits, else a
//!   **point lookup** of the query node if that fits;
//! * otherwise the request runs at full fidelity.
//!
//! Every admitted request reaches exactly one terminal state, giving the
//! counter identity the integration tests pin:
//! `admitted == completed + degraded + dropped`.
//!
//! ## Replica failure steering
//!
//! [`Outage`] windows (typically extracted from a fault plan) take whole
//! replicas down: the front walks the ring's preference order to the
//! first live replica (counted in [`PlaneStats::rerouted_outage`]),
//! hedges only among live replicas, and a lane inside an outage window
//! pushes its dispatch clock past it. When the window closes the ring is
//! unchanged, so recovery restores the original routing by construction.

use crate::admission::{Admission, Verdict};
use crate::arrivals::{generate_timeline, PlaneRequest, TenantSpec};
use crate::router::Ring;
use omega_embed::Embedding;
use omega_hetmem::{MemSystem, NetModel, SimDuration};
use omega_obs::{LatencyHistogram, Recorder, Track};
use omega_serve::{pool, EmbedServer, Request, RequestKind, ServeConfig};

/// Simulated wire size of one routed request (ids, kind, deadline, tenant).
const REQ_BYTES: u64 = 32;

/// Starting cost estimates (ns) before a replica has served anything —
/// quickly overwritten by the running averages.
const EST_GET_PRIOR_NS: u64 = 100_000;
const EST_TOPK_PRIOR_NS: u64 = 1_000_000;

/// Prime the pool's per-task estimate for a replica-lane round so the
/// first round already dispatches in parallel (a round of batches far
/// exceeds the sequential cutoff).
const LANE_TASK_EST_NS: u64 = 2_000_000;

/// Configuration of a [`RequestPlane`].
#[derive(Debug, Clone, Copy)]
pub struct PlaneConfig {
    /// Number of serving replicas.
    pub replicas: usize,
    /// Virtual nodes per replica on the consistent-hash ring.
    pub vnodes: u32,
    /// Seed of every plane-level draw (arrivals, ring placement).
    pub seed: u64,
    /// Arrivals are generated over `[0, horizon)`; dispatch continues
    /// until every queue drains.
    pub horizon: SimDuration,
    /// Most requests dispatched to a replica in one batch.
    pub batch_size: usize,
    /// Hard bound on any replica queue (admission sheds beyond
    /// priority-tiered fractions of this).
    pub max_queue: usize,
    /// Estimated queue wait (ns) beyond which an arrival is hedged to the
    /// ring successor instead of its primary replica.
    pub hedge_wait_ns: u64,
    /// Simulated length of one concurrent round: the front admits a
    /// quantum of arrivals, every replica lane runs to the boundary, and
    /// completions merge. Part of the simulation's semantics (routing
    /// gauges refresh at round boundaries), *not* a tuning knob for wall
    /// speed — results are identical at any wall-thread count but not
    /// across different quanta.
    pub quantum_ns: u64,
    /// The shared cluster link model charging front-to-replica RPCs.
    pub net: NetModel,
}

impl PlaneConfig {
    /// Defaults: 2 replicas × 32 vnodes, 1 s horizon, 32-deep batches,
    /// 256-deep queues, hedge past 2 ms of estimated wait, 5 ms rounds,
    /// 25 GbE links.
    pub fn new(replicas: usize) -> PlaneConfig {
        PlaneConfig {
            replicas,
            vnodes: 32,
            seed: 42,
            horizon: SimDuration::from_secs_f64(1.0),
            batch_size: 32,
            max_queue: 256,
            hedge_wait_ns: 2_000_000,
            quantum_ns: 5_000_000,
            net: NetModel::datacenter_25gbe(),
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    pub fn max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    pub fn hedge_wait_ns(mut self, ns: u64) -> Self {
        self.hedge_wait_ns = ns;
        self
    }

    pub fn quantum_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "round quantum must be positive");
        self.quantum_ns = ns;
        self
    }

    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }
}

/// A window during which one replica is entirely unreachable — the
/// request-plane face of a fault plan's `outage` rule. The front routes
/// around it, lanes dispatch past it, and a window closing restores the
/// original ring routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    pub replica: u32,
    pub from_ns: u64,
    /// Exclusive end; `u64::MAX` means the replica never comes back.
    pub until_ns: u64,
}

/// Terminal-state and verdict counters, kept both globally and per tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Arrivals presented to the front door.
    pub offered: u64,
    /// Arrivals past both admission gates. Every admitted request ends in
    /// exactly one of `completed`, `degraded`, `dropped`.
    pub admitted: u64,
    pub rejected_quota: u64,
    pub rejected_queue: u64,
    /// Served at full fidelity.
    pub completed: u64,
    /// Served with reduced fidelity (`degraded_reduced_k + degraded_to_get`).
    pub degraded: u64,
    pub degraded_reduced_k: u64,
    pub degraded_to_get: u64,
    /// Abandoned at dispatch: the deadline had already passed.
    pub dropped: u64,
    /// Arrivals routed to the ring successor instead of the loaded primary.
    pub hedged_routes: u64,
    /// Arrivals steered off a replica inside an [`Outage`] window.
    pub rerouted_outage: u64,
    /// Served requests whose completion still missed the deadline (the
    /// estimate was wrong); they remain `completed`/`degraded`.
    pub slo_miss: u64,
}

impl PlaneStats {
    /// The terminal-state identity every run must satisfy.
    pub fn identity_holds(&self) -> bool {
        self.offered == self.admitted + self.rejected_quota + self.rejected_queue
            && self.admitted == self.completed + self.degraded + self.dropped
            && self.degraded == self.degraded_reduced_k + self.degraded_to_get
    }
}

/// Result of [`RequestPlane::run`].
#[derive(Debug, Clone)]
pub struct PlaneReport {
    pub stats: PlaneStats,
    /// Per-tenant slice of the same counters, tenant-table order.
    pub per_tenant: Vec<PlaneStats>,
    /// Arrival→completion latency of every *served* request (completed or
    /// degraded), streamed into fixed log-spaced buckets — memory stays
    /// constant however many requests the sweep offers.
    pub latency: LatencyHistogram,
    /// Dispatch wait of every served request.
    pub queue_wait: LatencyHistogram,
    /// The arrival horizon the run was configured with.
    pub horizon: SimDuration,
    /// Simulated instant the last served request completed.
    pub end_ns: u64,
}

impl PlaneReport {
    /// Nearest-rank percentile of served-request latency (ns).
    pub fn latency_percentile_ns(&self, q: f64) -> u64 {
        self.latency.percentile(q)
    }

    /// Nearest-rank percentile of dispatch wait (ns).
    pub fn queue_wait_percentile_ns(&self, q: f64) -> u64 {
        self.queue_wait.percentile(q)
    }

    /// Served requests (completed + degraded) per simulated second of the
    /// whole run (arrival horizon or last completion, whichever is later).
    pub fn served_qps(&self) -> f64 {
        let end_s = (self.horizon.as_nanos().max(self.end_ns)) as f64 * 1e-9;
        if end_s == 0.0 {
            0.0
        } else {
            (self.stats.completed + self.stats.degraded) as f64 / end_s
        }
    }

    /// Full-fidelity, in-deadline completions per simulated second — the
    /// number the throughput-vs-p99 curve plots.
    pub fn goodput_qps(&self) -> f64 {
        let end_s = (self.horizon.as_nanos().max(self.end_ns)) as f64 * 1e-9;
        let good = (self.stats.completed + self.stats.degraded).saturating_sub(self.stats.slo_miss);
        if end_s == 0.0 {
            0.0
        } else {
            good as f64 / end_s
        }
    }
}

/// Dispatch-stream record of one run (see [`RequestPlane::run_traced`]):
/// which requests each replica processed, in its own processing order.
/// The property tests pin that the streams exactly partition the admitted
/// set and that they are identical at every wall-thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlaneTrace {
    /// Global arrival ordinals of every admitted request, arrival order.
    pub admitted: Vec<u64>,
    /// Per replica: `(event_ns, seq)` of every terminal event (serve or
    /// drop) in the order that replica processed them.
    pub streams: Vec<Vec<(u64, u64)>>,
}

/// A request sitting in a replica queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    /// Global arrival ordinal — the dispatch tie-breaker after priority.
    seq: u64,
    req: PlaneRequest,
}

/// Per-replica running cost estimates (EWMA, ¾ old + ¼ new, u64 ns).
#[derive(Debug, Clone, Copy)]
struct CostEst {
    get_ns: u64,
    topk_ns: u64,
    any_ns: u64,
}

impl CostEst {
    fn prior() -> CostEst {
        CostEst {
            get_ns: EST_GET_PRIOR_NS,
            topk_ns: EST_TOPK_PRIOR_NS,
            any_ns: (EST_GET_PRIOR_NS + EST_TOPK_PRIOR_NS) / 2,
        }
    }

    fn update(est: &mut u64, sample: u64) {
        *est = (*est * 3 + sample) / 4;
    }
}

/// How one admitted request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Completed,
    DegradedReducedK,
    DegradedToGet,
    Dropped,
}

/// One terminal event produced by a replica lane, merged back on the
/// caller in `(event_ns, replica, seq)` order.
#[derive(Debug, Clone, Copy)]
struct LaneEvent {
    event_ns: u64,
    replica: u32,
    seq: u64,
    tenant: u32,
    outcome: Outcome,
    /// Arrival→completion (ns); 0 for drops.
    latency_ns: u64,
    /// Arrival→dispatch (ns); 0 for drops.
    wait_ns: u64,
    slo_miss: bool,
}

/// One replica's event loop: an ordered dispatch queue, its simulated
/// free instant, live cost estimates, and the [`EmbedServer`] behind it.
/// `run_until` advances the lane to a round boundary reading *only* lane
/// state — lanes never touch the metrics registry, so they are free to
/// run concurrently.
struct ReplicaLane<'a> {
    r: u32,
    server: &'a mut EmbedServer,
    queue: Vec<Queued>,
    /// Simulated instant the replica finishes its current batch.
    ready_ns: u64,
    est: CostEst,
    /// Outage windows `(from_ns, until_ns)` covering this replica.
    outages: Vec<(u64, u64)>,
    /// Terminal events of the current round, processing order.
    events: Vec<LaneEvent>,
    batch_size: usize,
    net: NetModel,
    dim: usize,
    /// Halved-fidelity probe count when serving through an IVF index.
    ivf_half_nprobe: Option<usize>,
}

impl ReplicaLane<'_> {
    /// Push `t` past every outage window covering it.
    fn outage_clear(&self, mut t: u64) -> u64 {
        loop {
            let mut moved = false;
            for &(from, until) in &self.outages {
                if from <= t && t < until {
                    t = until;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// Live top-k cost `(full_ns, half_ns)`: the EWMA sample mean scaled
    /// by the serve tier's real probe accounting. A replica that has been
    /// probing degraded (half-width) lists reports a cheap average; the
    /// correction rescales it to the configured `nprobe` so the ladder
    /// prices a *full-fidelity* scan, and prices the halved tier by its
    /// actual probe ratio. Exact-scan replicas (no IVF) fall back to the
    /// plain EWMA and a halved guess.
    fn topk_cost_live(&self) -> (u64, u64) {
        let sig = self.server.signals();
        if let Some(nprobe) = sig.nprobe {
            if sig.ivf_queries > 0 && nprobe > 0 {
                let avg_probes_milli = sig.ivf_probes.saturating_mul(1000) / sig.ivf_queries;
                if let Some(full) = self
                    .est
                    .topk_ns
                    .saturating_mul(nprobe as u64 * 1000)
                    .checked_div(avg_probes_milli)
                {
                    let half = full.saturating_mul((nprobe / 2).max(1) as u64) / nprobe as u64;
                    return (full, half);
                }
            }
        }
        (self.est.topk_ns, self.est.topk_ns / 2)
    }

    fn resp_bytes(&self, kind: RequestKind) -> u64 {
        match kind {
            RequestKind::Get => (self.dim * 4) as u64,
            RequestKind::TopK { k, .. } => 16 + 8 * k as u64,
        }
    }

    /// Drain the lane's queue up to `limit` (exclusive): repeatedly form
    /// the next batch at `t = outage_clear(max(ready, earliest arrival))`,
    /// triage it against the live cost ladder, serve it, and record the
    /// terminal events. A final drain round passes `u64::MAX`; a replica
    /// that never recovers then drops whatever is still queued.
    fn run_until(&mut self, limit: u64) {
        while let Some(earliest) = self.queue.iter().map(|q| q.req.arrival_ns).min() {
            let t = self.outage_clear(self.ready_ns.max(earliest));
            if t >= limit {
                break;
            }

            // Batch = the due requests (arrived by `t`), highest priority
            // first, then arrival order; the rest wait for a later batch.
            let mut due: Vec<Queued> = Vec::new();
            let mut rest: Vec<Queued> = Vec::with_capacity(self.queue.len());
            for q in self.queue.drain(..) {
                if q.req.arrival_ns <= t {
                    due.push(q);
                } else {
                    rest.push(q);
                }
            }
            due.sort_unstable_by_key(|q| (q.req.priority, q.seq));
            let take = due.len().min(self.batch_size);
            let picked: Vec<Queued> = due.drain(..take).collect();
            rest.extend(due);
            self.queue = rest;

            // Deadline gate + degrade ladder against live cost signals.
            let (topk_full_ns, topk_half_ns) = self.topk_cost_live();
            let mut batch: Vec<Request> = Vec::with_capacity(picked.len());
            let mut meta: Vec<(Queued, Outcome)> = Vec::with_capacity(picked.len());
            for q in picked {
                let slack = q.req.deadline_ns.saturating_sub(t);
                if slack == 0 {
                    self.push_drop(t, &q);
                    continue;
                }
                let (request, outcome) = match q.req.request.kind {
                    RequestKind::Get => (q.req.request, Outcome::Completed),
                    RequestKind::TopK { k, nprobe } => {
                        if topk_full_ns <= slack {
                            (q.req.request, Outcome::Completed)
                        } else if topk_half_ns <= slack {
                            // The scan nearly fits: halve k, and on an
                            // IVF replica halve the probe count with it —
                            // exact replicas only shrink the response on
                            // the wire, IVF replicas really halve the
                            // scanned lists.
                            let k = (k / 2).max(1);
                            let nprobe = nprobe.map(|p| (p / 2).max(1)).or(self.ivf_half_nprobe);
                            (
                                Request {
                                    node: q.req.request.node,
                                    kind: RequestKind::TopK { k, nprobe },
                                },
                                Outcome::DegradedReducedK,
                            )
                        } else if self.est.get_ns <= slack {
                            // Only a point lookup fits: answer with the
                            // query node's own vector.
                            (
                                Request {
                                    node: q.req.request.node,
                                    kind: RequestKind::Get,
                                },
                                Outcome::DegradedToGet,
                            )
                        } else {
                            self.push_drop(t, &q);
                            continue;
                        }
                    }
                };
                batch.push(request);
                meta.push((q, outcome));
            }
            if batch.is_empty() {
                continue;
            }

            let sim_before = self.server.sim_now();
            let result = self.server.serve_batch(&batch);
            let batch_sim = self.server.sim_now() - sim_before;
            self.ready_ns = t + batch_sim.as_nanos();

            for (j, (q, outcome)) in meta.iter().enumerate() {
                let rpc = self
                    .net
                    .rpc_time(REQ_BYTES, self.resp_bytes(batch[j].kind))
                    .as_nanos();
                let completion = t + result.sim_latency_ns[j] + rpc;
                let service = completion - t;

                match batch[j].kind {
                    RequestKind::Get => CostEst::update(&mut self.est.get_ns, service),
                    RequestKind::TopK { .. } => CostEst::update(&mut self.est.topk_ns, service),
                }
                CostEst::update(&mut self.est.any_ns, service);

                self.events.push(LaneEvent {
                    event_ns: completion,
                    replica: self.r,
                    seq: q.seq,
                    tenant: q.req.tenant,
                    outcome: *outcome,
                    latency_ns: completion - q.req.arrival_ns,
                    wait_ns: t - q.req.arrival_ns,
                    slo_miss: completion > q.req.deadline_ns,
                });
            }
        }

        // A permanent outage strands the queue: the final drain round
        // (unbounded limit) turns the leftovers into drops so every
        // admitted request still reaches a terminal state.
        if limit == u64::MAX && !self.queue.is_empty() {
            for q in std::mem::take(&mut self.queue) {
                self.push_drop(q.req.arrival_ns, &q);
            }
        }
    }

    fn push_drop(&mut self, event_ns: u64, q: &Queued) {
        self.events.push(LaneEvent {
            event_ns,
            replica: self.r,
            seq: q.seq,
            tenant: q.req.tenant,
            outcome: Outcome::Dropped,
            latency_ns: 0,
            wait_ns: 0,
            slo_miss: false,
        });
    }
}

/// The front's virtual gauge of one replica, reset from lane truth at the
/// top of every round and advanced as the round's arrivals are admitted.
/// Prices come from the lane's live estimates inflated by the replica's
/// measured cache miss rate — a cold replica looks expensive to the
/// router before its queue ever backs up.
#[derive(Debug, Clone, Copy, Default)]
struct FrontGauge {
    /// Simulated instant the replica frees up (lane truth).
    vready_ns: u64,
    /// Queue depth the admission gate sees.
    vdepth: usize,
    /// Priced simulated work sitting in the queue (ns).
    backlog_ns: u64,
    /// Price of routing one more Get / TopK here (ns).
    price_get_ns: u64,
    price_topk_ns: u64,
}

impl FrontGauge {
    /// Estimated wait a request joining this replica at `now_ns` sees.
    fn est_wait(&self, now_ns: u64) -> u64 {
        self.vready_ns.saturating_sub(now_ns) + self.backlog_ns
    }

    fn price(&self, kind: RequestKind) -> u64 {
        match kind {
            RequestKind::Get => self.price_get_ns,
            RequestKind::TopK { .. } => self.price_topk_ns,
        }
    }

    /// Miss-rate inflation: a replica whose cache misses half its Gets
    /// gets its estimates marked up 25%, one that hits everything keeps
    /// them as-is.
    fn inflate(ns: u64, hit_rate: f64) -> u64 {
        ns + (ns as f64 * (1.0 - hit_rate) * 0.5) as u64
    }

    fn refresh(lane: &ReplicaLane<'_>) -> FrontGauge {
        let sig = lane.server.signals();
        let (topk_full_ns, _) = lane.topk_cost_live();
        let price_get_ns = FrontGauge::inflate(lane.est.get_ns, sig.hit_rate);
        let price_topk_ns = FrontGauge::inflate(topk_full_ns, sig.hit_rate);
        let mut gauge = FrontGauge {
            vready_ns: lane.ready_ns,
            vdepth: lane.queue.len(),
            backlog_ns: 0,
            price_get_ns,
            price_topk_ns,
        };
        gauge.backlog_ns = lane
            .queue
            .iter()
            .map(|q| gauge.price(q.req.request.kind))
            .sum();
        gauge
    }
}

/// The admission-controlled request plane over N replicas.
pub struct RequestPlane {
    cfg: PlaneConfig,
    servers: Vec<EmbedServer>,
    ring: Ring,
    rec: Recorder,
    outages: Vec<Outage>,
}

impl RequestPlane {
    /// Stand up `cfg.replicas` servers, one per provided [`MemSystem`]
    /// (callers install per-replica fault plans on those systems first —
    /// the servers' retry/hedge/degrade machinery reacts to whatever the
    /// plans inject). Every replica holds a full copy of the table.
    pub fn new(
        systems: &[MemSystem],
        emb: &Embedding,
        serve_cfg: ServeConfig,
        cfg: PlaneConfig,
    ) -> omega_hetmem::Result<RequestPlane> {
        assert!(cfg.replicas > 0, "plane needs at least one replica");
        assert_eq!(
            systems.len(),
            cfg.replicas,
            "one MemSystem per replica required"
        );
        let servers = systems
            .iter()
            .map(|sys| EmbedServer::new(sys, emb, serve_cfg))
            .collect::<omega_hetmem::Result<Vec<_>>>()?;
        Ok(RequestPlane {
            ring: Ring::new(cfg.replicas as u32, cfg.vnodes, cfg.seed),
            cfg,
            servers,
            rec: Recorder::disabled(),
            outages: Vec::new(),
        })
    }

    /// Instrument the plane: replica `r`'s serving spans land on track
    /// `(pid = r + 1, tid = 0)`; plane verdicts/latency metrics go to the
    /// recorder's registry.
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.rec = rec.clone();
        self.servers = self
            .servers
            .drain(..)
            .enumerate()
            .map(|(r, srv)| {
                let track = Track::new(r as u32 + 1, 0);
                rec.set_track_name(track, &format!("replica {r}"));
                srv.with_recorder(rec, track)
            })
            .collect();
        self
    }

    /// Declare replica outage windows (typically extracted from a fault
    /// plan's `outage` rules) for the next run.
    pub fn with_outages(mut self, outages: &[Outage]) -> Self {
        self.outages = outages.to_vec();
        self
    }

    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    pub fn servers(&self) -> &[EmbedServer] {
        &self.servers
    }

    /// Run the open-loop timeline of `tenants` through the plane.
    pub fn run(&mut self, tenants: &[TenantSpec]) -> PlaneReport {
        self.run_impl(tenants, None)
    }

    /// [`run`](Self::run), also recording the per-replica dispatch
    /// streams for the partition property tests.
    pub fn run_traced(&mut self, tenants: &[TenantSpec]) -> (PlaneReport, PlaneTrace) {
        let mut trace = PlaneTrace {
            admitted: Vec::new(),
            streams: vec![Vec::new(); self.cfg.replicas],
        };
        let report = self.run_impl(tenants, Some(&mut trace));
        (report, trace)
    }

    fn run_impl(
        &mut self,
        tenants: &[TenantSpec],
        mut trace: Option<&mut PlaneTrace>,
    ) -> PlaneReport {
        let timeline = generate_timeline(self.cfg.seed, tenants, self.cfg.horizon.as_nanos());
        let quotas: Vec<(f64, f64)> = tenants.iter().map(|t| (t.quota_qps, t.burst)).collect();
        let mut admission = Admission::new(&quotas, self.cfg.max_queue);

        let cfg = self.cfg;
        let nr = cfg.replicas;
        let threads = self.servers[0].config().threads;
        let dim = self.servers[0].store().dim();
        let ivf_half_nprobe: Option<usize> =
            self.servers[0].ivf().map(|ivf| (ivf.nprobe() / 2).max(1));
        // Shards are read off the (shared) store layout before the lanes
        // mutably borrow the servers.
        let shards: Vec<u64> = timeline
            .iter()
            .map(|r| self.servers[0].store().shard_of(r.request.node) as u64)
            .collect();

        let mut outage_windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nr];
        for o in &self.outages {
            if (o.replica as usize) < nr {
                outage_windows[o.replica as usize].push((o.from_ns, o.until_ns));
            }
        }
        let have_outages = outage_windows.iter().any(|w| !w.is_empty());
        let alive = |r: usize, now: u64| -> bool {
            !outage_windows[r]
                .iter()
                .any(|&(from, until)| from <= now && now < until)
        };

        let ring = &self.ring;
        let rec = &self.rec;
        let mut lanes: Vec<ReplicaLane<'_>> = self
            .servers
            .iter_mut()
            .enumerate()
            .map(|(r, server)| ReplicaLane {
                r: r as u32,
                server,
                queue: Vec::new(),
                ready_ns: 0,
                est: CostEst::prior(),
                outages: outage_windows[r].clone(),
                events: Vec::new(),
                batch_size: cfg.batch_size,
                net: cfg.net,
                dim,
                ivf_half_nprobe,
            })
            .collect();
        pool::prime_task_estimate("plane.lane", LANE_TASK_EST_NS);

        let mut stats = PlaneStats::default();
        let mut per_tenant = vec![PlaneStats::default(); tenants.len()];
        let mut latency = LatencyHistogram::new();
        let mut queue_wait = LatencyHistogram::new();
        let mut end_ns: u64 = 0;

        let mut ai = 0usize; // next timeline arrival
        let mut round_end = cfg.quantum_ns;
        loop {
            let draining = ai >= timeline.len();
            let limit = if draining { u64::MAX } else { round_end };

            // 1. Front: admit and route this round's arrivals against the
            // virtual gauges (refreshed from lane truth each round).
            let mut gauges: Vec<FrontGauge> = lanes.iter().map(FrontGauge::refresh).collect();
            while ai < timeline.len() && timeline[ai].arrival_ns < limit {
                let req = timeline[ai];
                let seq = ai as u64;
                let shard = shards[ai];
                ai += 1;
                let now = req.arrival_ns;
                let ti = req.tenant as usize;
                stats.offered += 1;
                per_tenant[ti].offered += 1;

                // Route by the node's shard so one shard's traffic always
                // hits the same hot cache. A primary inside an outage
                // window steers down the ring's preference order to the
                // first live replica; hedging picks the next live
                // successor when the chosen replica's estimated wait is
                // past the knob and the alternative (plus its extra
                // forward hop) looks better.
                let primary = ring.primary(shard) as usize;
                let mut replica = primary;
                let mut any_alive = true;
                if !alive(primary, now) {
                    match ring
                        .preference(shard)
                        .into_iter()
                        .find(|&r| alive(r as usize, now))
                    {
                        Some(r) => {
                            replica = r as usize;
                            stats.rerouted_outage += 1;
                            per_tenant[ti].rerouted_outage += 1;
                        }
                        None => any_alive = false,
                    }
                }
                if any_alive && nr > 1 {
                    let wait_p = gauges[replica].est_wait(now);
                    if wait_p > cfg.hedge_wait_ns {
                        // Fault-free runs take the allocation-free ring
                        // successor; under outages walk the preference
                        // order to the next live distinct replica.
                        let succ = if have_outages {
                            ring.preference(shard)
                                .into_iter()
                                .find(|&r| r as usize != replica && alive(r as usize, now))
                        } else {
                            Some(ring.successor(shard))
                        };
                        if let Some(succ) = succ.filter(|&s| s as usize != replica) {
                            let succ = succ as usize;
                            let hop = cfg.net.forward_time(REQ_BYTES).as_nanos();
                            let wait_s = gauges[succ].est_wait(now);
                            if wait_s + hop < wait_p {
                                replica = succ;
                                stats.hedged_routes += 1;
                                per_tenant[ti].hedged_routes += 1;
                            }
                        }
                    }
                }

                if !any_alive {
                    // Every replica is down: the request has nowhere to
                    // queue. Spend the quota token (the request was
                    // offered) and shed it as a queue rejection.
                    let verdict = admission.admit(ti, req.priority, now, usize::MAX);
                    match verdict {
                        Verdict::RejectedQuota => {
                            stats.rejected_quota += 1;
                            per_tenant[ti].rejected_quota += 1;
                        }
                        _ => {
                            stats.rejected_queue += 1;
                            per_tenant[ti].rejected_queue += 1;
                        }
                    }
                    continue;
                }

                match admission.admit(ti, req.priority, now, gauges[replica].vdepth) {
                    Verdict::Admitted => {
                        stats.admitted += 1;
                        per_tenant[ti].admitted += 1;
                        rec.observe("plane.queue.depth", gauges[replica].vdepth as f64);
                        gauges[replica].vdepth += 1;
                        gauges[replica].backlog_ns += gauges[replica].price(req.request.kind);
                        if let Some(tr) = trace.as_deref_mut() {
                            tr.admitted.push(seq);
                        }
                        lanes[replica].queue.push(Queued { seq, req });
                    }
                    Verdict::RejectedQuota => {
                        stats.rejected_quota += 1;
                        per_tenant[ti].rejected_quota += 1;
                    }
                    Verdict::RejectedQueue => {
                        stats.rejected_queue += 1;
                        per_tenant[ti].rejected_queue += 1;
                    }
                }
            }

            // 2. Replica lanes run concurrently to the round boundary.
            // Each lane reads only its own state; the pool's inline
            // fallback on small hosts executes the same code in replica
            // order, so results are identical either way.
            pool::phase_scope("plane.round", || {
                let lane_slots: Vec<&mut [ReplicaLane<'_>]> = lanes.chunks_mut(1).collect();
                pool::for_each_chunk_labeled("plane.lane", threads, lane_slots, |_, lane| {
                    lane[0].run_until(limit);
                });
            });

            // 3. Merge: fold this round's terminal events back in fixed
            // (sim_time, replica, seq) order before touching any counter
            // or histogram — the registry's float accumulators are
            // order-sensitive, the merge order never is.
            let mut round_events: Vec<LaneEvent> = Vec::new();
            for lane in &mut lanes {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.streams[lane.r as usize]
                        .extend(lane.events.iter().map(|e| (e.event_ns, e.seq)));
                }
                round_events.append(&mut lane.events);
            }
            round_events.sort_unstable_by_key(|e| (e.event_ns, e.replica, e.seq));
            for e in &round_events {
                let ti = e.tenant as usize;
                match e.outcome {
                    Outcome::Completed => {
                        stats.completed += 1;
                        per_tenant[ti].completed += 1;
                    }
                    Outcome::DegradedReducedK => {
                        stats.degraded += 1;
                        stats.degraded_reduced_k += 1;
                        per_tenant[ti].degraded += 1;
                        per_tenant[ti].degraded_reduced_k += 1;
                    }
                    Outcome::DegradedToGet => {
                        stats.degraded += 1;
                        stats.degraded_to_get += 1;
                        per_tenant[ti].degraded += 1;
                        per_tenant[ti].degraded_to_get += 1;
                    }
                    Outcome::Dropped => {
                        stats.dropped += 1;
                        per_tenant[ti].dropped += 1;
                        continue;
                    }
                }
                if e.slo_miss {
                    stats.slo_miss += 1;
                    per_tenant[ti].slo_miss += 1;
                }
                end_ns = end_ns.max(e.event_ns);
                latency.record(e.latency_ns);
                queue_wait.record(e.wait_ns);
                rec.observe("plane.latency_ns", e.latency_ns as f64);
                rec.observe("plane.queue.wait_ns", e.wait_ns as f64);
            }

            if draining {
                break;
            }
            round_end += cfg.quantum_ns;
        }
        drop(lanes);

        let report = PlaneReport {
            stats,
            per_tenant,
            latency,
            queue_wait,
            horizon: self.cfg.horizon,
            end_ns,
        };
        self.publish(&report, tenants);
        debug_assert!(report.stats.identity_holds(), "terminal-state identity");
        report
    }

    /// Publish the run's verdict counters and goodput through the
    /// recorder's registry (BTreeMap-backed, so export order — and the
    /// metrics JSONL bytes — is deterministic).
    fn publish(&self, report: &PlaneReport, tenants: &[TenantSpec]) {
        let s = &report.stats;
        self.rec.counter_set("plane.offered", s.offered);
        self.rec.counter_set("plane.admitted", s.admitted);
        self.rec
            .counter_set("plane.rejected.quota", s.rejected_quota);
        self.rec
            .counter_set("plane.rejected.queue", s.rejected_queue);
        self.rec.counter_set("plane.completed", s.completed);
        self.rec.counter_set("plane.degraded", s.degraded);
        self.rec
            .counter_set("plane.degraded.reduced_k", s.degraded_reduced_k);
        self.rec
            .counter_set("plane.degraded.to_get", s.degraded_to_get);
        self.rec.counter_set("plane.dropped", s.dropped);
        self.rec.counter_set("plane.hedged_routes", s.hedged_routes);
        self.rec
            .counter_set("plane.rerouted_outage", s.rerouted_outage);
        self.rec.counter_set("plane.slo_miss", s.slo_miss);
        self.rec
            .gauge_set("plane.goodput_qps", report.goodput_qps());
        self.rec.gauge_set("plane.served_qps", report.served_qps());
        for (ti, t) in tenants.iter().enumerate() {
            let p = &report.per_tenant[ti];
            let name = &t.name;
            self.rec
                .counter_set(&format!("plane.tenant.{name}.offered"), p.offered);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.admitted"), p.admitted);
            self.rec.counter_set(
                &format!("plane.tenant.{name}.rejected"),
                p.rejected_quota + p.rejected_queue,
            );
            self.rec
                .counter_set(&format!("plane.tenant.{name}.completed"), p.completed);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.degraded"), p.degraded);
            self.rec
                .counter_set(&format!("plane.tenant.{name}.dropped"), p.dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Priority};
    use omega_hetmem::{MemSystem, Topology};
    use omega_serve::{Popularity, WorkloadConfig};

    fn small_plane(replicas: usize, rate: f64) -> (RequestPlane, Vec<TenantSpec>) {
        let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
        let systems: Vec<MemSystem> = (0..replicas)
            .map(|_| MemSystem::new(Topology::paper_machine_scaled(8 << 20)))
            .collect();
        let serve_cfg = ServeConfig::new(8 << 10).rows_per_shard(32).batch_size(16);
        let cfg = PlaneConfig::new(replicas)
            .seed(7)
            .horizon(SimDuration::from_secs_f64(0.05));
        let plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg).unwrap();
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.2, 8);
        let tenants = vec![
            TenantSpec::poisson("interactive", rate * 0.6, wl).with_priority(Priority::High),
            TenantSpec::poisson("batch", rate * 0.4, wl).with_priority(Priority::Low),
        ];
        (plane, tenants)
    }

    #[test]
    fn identity_holds_at_low_load() {
        let (mut plane, tenants) = small_plane(2, 2_000.0);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        assert!(report.stats.offered > 0);
        assert!(report.stats.completed > 0);
        assert_eq!(
            report.latency.count(),
            report.stats.completed + report.stats.degraded
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut a, tenants) = small_plane(2, 20_000.0);
        let (mut b, _) = small_plane(2, 20_000.0);
        let ra = a.run(&tenants);
        let rb = b.run(&tenants);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.queue_wait, rb.queue_wait);
    }

    #[test]
    fn traced_streams_partition_the_admitted_set() {
        let (mut plane, tenants) = small_plane(4, 30_000.0);
        let (report, trace) = plane.run_traced(&tenants);
        assert!(report.stats.identity_holds());
        let mut union: Vec<u64> = trace
            .streams
            .iter()
            .flat_map(|s| s.iter().map(|&(_, seq)| seq))
            .collect();
        union.sort_unstable();
        let mut admitted = trace.admitted.clone();
        admitted.sort_unstable();
        assert_eq!(union, admitted, "streams must partition the admitted set");
        assert_eq!(union.len() as u64, report.stats.admitted);
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        // Offered load far past the quota, with an SLO tight enough that
        // queued top-k work degrades or drops at dispatch.
        let (mut plane, mut tenants) = small_plane(1, 400_000.0);
        for t in &mut tenants {
            *t = t
                .clone()
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(300_000);
        }
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        let shed = report.stats.rejected_quota
            + report.stats.rejected_queue
            + report.stats.dropped
            + report.stats.degraded;
        assert!(shed > 0, "overload must shed work: {:?}", report.stats);
        // Served requests dispatch within ~a deadline of arriving, so the
        // served p99 stays bounded even though offered load is unbounded.
        let p99 = report.latency_percentile_ns(0.99);
        let deadline = tenants[0].deadline_ns;
        assert!(
            p99 < 4 * deadline,
            "served p99 {p99} ns should stay within a few deadlines ({deadline} ns)"
        );
    }

    #[test]
    fn flash_crowd_trips_admission() {
        let (mut plane, mut tenants) = small_plane(1, 1_000.0);
        tenants[1] = tenants[1].clone().with_process(ArrivalProcess::FlashCrowd {
            base_rate_per_s: 400.0,
            spike_rate_per_s: 600_000.0,
            spike_start_s: 0.01,
            spike_len_s: 0.02,
        });
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds());
        assert!(
            report.per_tenant[1].rejected_quota > 0,
            "the flash crowd must exhaust its quota: {:?}",
            report.per_tenant[1]
        );
        // The high-priority tenant keeps the bulk of its traffic served.
        let t0 = &report.per_tenant[0];
        assert!(
            (t0.completed + t0.degraded) * 10 > t0.offered * 8,
            "interactive tenant starved: {t0:?}"
        );
    }

    #[test]
    fn replicas_spread_work() {
        let (mut plane, tenants) = small_plane(4, 50_000.0);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds());
        let served: Vec<u64> = plane.servers().iter().map(|s| s.stats().requests).collect();
        assert!(served.iter().filter(|&&n| n > 0).count() >= 3, "{served:?}");
    }

    #[test]
    fn outage_reroutes_then_recovery_restores_routing() {
        // Replica 0 is down for the first half of the run: its traffic
        // steers to live replicas, and once the window closes the ring
        // (unchanged) routes to it again.
        let (plane, tenants) = small_plane(2, 20_000.0);
        let mut plane = plane.with_outages(&[Outage {
            replica: 0,
            from_ns: 0,
            until_ns: 25_000_000,
        }]);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        assert!(
            report.stats.rerouted_outage > 0,
            "outage must steer traffic: {:?}",
            report.stats
        );
        assert!(
            plane.servers()[0].stats().requests > 0,
            "recovery must restore routing to replica 0"
        );
        assert!(plane.servers()[1].stats().requests > 0);
    }

    #[test]
    fn permanent_outage_of_all_replicas_sheds_everything() {
        let (plane, tenants) = small_plane(2, 5_000.0);
        let mut plane = plane.with_outages(&[
            Outage {
                replica: 0,
                from_ns: 0,
                until_ns: u64::MAX,
            },
            Outage {
                replica: 1,
                from_ns: 0,
                until_ns: u64::MAX,
            },
        ]);
        let report = plane.run(&tenants);
        assert!(report.stats.identity_holds(), "{:?}", report.stats);
        assert_eq!(report.stats.completed, 0);
        assert_eq!(report.stats.admitted, 0, "nowhere to queue");
        assert_eq!(
            report.stats.rejected_quota + report.stats.rejected_queue,
            report.stats.offered
        );
    }
}
