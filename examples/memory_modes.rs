//! Memory modes — the heterogeneous-memory story of Fig. 1 in one example.
//!
//! Embed the same graph under DRAM-only, PM-only and heterogeneous
//! configurations, show the simulated-time ordering, the capacity failure
//! of DRAM-only on a billion-scale twin, the memory price of each machine,
//! and the per-component ablations (WoFP / NaDP / ASL).
//!
//! Run: `cargo run -p omega --release --example memory_modes`

use omega::{Omega, OmegaConfig, SystemVariant};
use omega_graph::Dataset;
use omega_hetmem::{DeviceKind, SimDuration, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 4_000; // quick twins
    let topo = Topology::paper_machine_scaled((24 << 20) / 4);
    let base = OmegaConfig::default()
        .with_topology(topo.clone())
        .with_threads(16)
        .with_dim(32);

    println!("simulated machine (scaled twin of the paper's testbed):");
    for node in 0..topo.nodes() {
        println!(
            "  node {node}: {} MiB DRAM + {} MiB PM, {} cores",
            topo.capacity(node, DeviceKind::Dram) >> 20,
            topo.capacity(node, DeviceKind::Pm) >> 20,
            topo.cores_per_socket()
        );
    }
    println!(
        "  memory bill: ${:.2} (PM supplies {:.0}% of byte capacity at ~2.1x \
         lower price/GiB than DRAM)",
        topo.memory_price_usd(),
        topo.total_capacity(DeviceKind::Pm) as f64
            / (topo.total_capacity(DeviceKind::Pm) + topo.total_capacity(DeviceKind::Dram)) as f64
            * 100.0
    );

    // Small graph: every mode completes; the ordering tells the story.
    let pk = Dataset::Pk.load_scaled(scale)?;
    println!("\nPK twin (|V|={}, |E|={}):", pk.rows(), pk.nnz() / 2);
    let mut times: Vec<(SystemVariant, Option<SimDuration>)> = Vec::new();
    for v in [
        SystemVariant::OmegaDram,
        SystemVariant::Omega,
        SystemVariant::OmegaWithoutWofp,
        SystemVariant::OmegaWithoutNadp,
        SystemVariant::OmegaWithoutAsl,
        SystemVariant::OmegaPm,
    ] {
        let omega = Omega::new(base.clone().with_variant(v))?;
        let t = match omega.embed(&pk) {
            Ok(r) => Some(r.total_time()),
            Err(e) if e.is_oom() => None,
            Err(e) => return Err(e.into()),
        };
        times.push((v, t));
    }
    let omega_t = times
        .iter()
        .find(|(v, _)| *v == SystemVariant::Omega)
        .and_then(|(_, t)| *t)
        .expect("OMeGa completes");
    for (v, t) in &times {
        match t {
            Some(t) => println!(
                "  {:<16} {:>10}   ({:.2}x of OMeGa)",
                v.label(),
                t.to_string(),
                t.ratio(omega_t)
            ),
            None => println!("  {:<16} {:>10}", v.label(), "OOM"),
        }
    }

    // Billion-scale twin: DRAM-only fails, heterogeneous memory carries it.
    let tw2010 = Dataset::Tw2010.load_scaled(scale)?;
    println!(
        "\nTW-2010 twin (|V|={}, |E|={}): the capacity story",
        tw2010.rows(),
        tw2010.nnz() / 2
    );
    for v in [SystemVariant::OmegaDram, SystemVariant::Omega] {
        let omega = Omega::new(base.clone().with_variant(v).with_dim(64))?;
        match omega.embed(&tw2010) {
            Ok(r) => println!("  {:<12} completed in {}", v.label(), r.total_time()),
            Err(e) if e.is_oom() => {
                println!("  {:<12} OUT OF MEMORY (as the paper reports)", v.label())
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
