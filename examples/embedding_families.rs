//! The three embedding families of the paper's Fig. 2, side by side:
//! matrix factorisation (ProNE via OMeGa), random walks (DeepWalk and
//! node2vec via `omega-walk`), and edge sampling (LINE) — evaluated on the
//! same community graph with link-prediction AUC and classification F1.
//!
//! Run: `cargo run -p omega --release --example embedding_families`

use omega::{Omega, OmegaConfig};
use omega_embed::eval::{link_prediction_auc, node_classification_micro_f1};
use omega_embed::Embedding;
use omega_graph::SbmConfig;
use omega_walk::{
    pairs_from_walks, LineConfig, LineModel, SgnsConfig, SgnsModel, WalkConfig, Walker,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sbm = SbmConfig {
        nodes: 800,
        communities: 4,
        deg_in: 12.0,
        deg_out: 3.0,
        seed: 77,
    };
    let graph = sbm.generate_csr()?;
    let labels = sbm.labels();
    let dim = 24;
    println!(
        "SBM graph: |V|={} |E|={} communities=4, embedding dim {dim}\n",
        graph.rows(),
        graph.nnz() / 2
    );

    let mut results: Vec<(&str, Embedding)> = Vec::new();

    // Matrix factorisation: ProNE on the OMeGa engine.
    let omega = Omega::new(OmegaConfig::default().with_dim(dim).with_threads(8))?;
    let run = omega.embed(&graph)?;
    println!("[MF]        {}", run.summary());
    results.push(("ProNE/OMeGa", run.embedding));

    // Random walks: DeepWalk (uniform) and node2vec (biased, BFS-ish).
    for (name, p, q) in [("DeepWalk", 1.0f32, 1.0f32), ("node2vec", 1.0, 0.5)] {
        let walker = Walker::new(
            &graph,
            WalkConfig {
                walks_per_node: 6,
                walk_length: 16,
                p,
                q,
                seed: 5,
            },
        );
        let walks = walker.generate_all();
        let pairs = pairs_from_walks(&walks, 4);
        let unigram = omega_walk::corpus::unigram_counts(&walks, graph.rows());
        let mut model = SgnsModel::new(
            graph.rows(),
            SgnsConfig {
                dim,
                epochs: 3,
                ..SgnsConfig::default()
            },
        );
        let loss = model.train(&pairs, &unigram);
        println!(
            "[walk]      {name}: {} walks, {} pairs, final loss {loss:.3}",
            walks.len(),
            pairs.len()
        );
        results.push((
            if p == 1.0 && q == 1.0 {
                "DeepWalk"
            } else {
                "node2vec"
            },
            Embedding::from_matrix(&model.embedding()),
        ));
    }

    // Edge sampling: LINE, first-order proximity.
    let mut line = LineModel::new(
        graph.rows(),
        LineConfig {
            dim,
            order: omega_walk::LineOrder::First,
            samples: 600_000,
            ..LineConfig::default()
        },
    );
    let loss = line.train(&graph);
    println!("[edge]      LINE(1st): 600k edge samples, final loss {loss:.3}");
    results.push(("LINE", Embedding::from_matrix(&line.embedding())));

    println!("\n{:<12} {:>10} {:>10}", "model", "LP AUC", "NC F1");
    for (name, emb) in &results {
        let auc = link_prediction_auc(emb, &graph, 400, 11);
        let f1 = node_classification_micro_f1(emb, &labels, 0.5, 12);
        println!("{name:<12} {auc:>10.3} {f1:>10.3}");
    }
    println!("\n(chance levels: AUC 0.5, F1 0.25)");
    Ok(())
}
