//! Node classification — the paper's second motivating downstream task.
//!
//! Generate a stochastic-block-model graph with ground-truth communities,
//! embed it with OMeGa, train a one-vs-rest logistic regression on half the
//! nodes and report micro-F1 on the rest, against a random-embedding floor.
//!
//! Run: `cargo run -p omega --release --example node_classification`

use omega::{Omega, OmegaConfig};
use omega_embed::eval::node_classification_micro_f1;
use omega_embed::Embedding;
use omega_graph::SbmConfig;
use omega_linalg::gaussian_matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four planted communities with strong internal connectivity.
    let sbm = SbmConfig {
        nodes: 1_200,
        communities: 4,
        deg_in: 14.0,
        deg_out: 3.0,
        seed: 21,
    };
    let graph = sbm.generate_csr()?;
    let labels = sbm.labels();
    println!(
        "SBM graph: |V|={} |E|={} communities={}",
        graph.rows(),
        graph.nnz() / 2,
        sbm.communities
    );

    let omega = Omega::new(OmegaConfig::default().with_dim(32).with_threads(8))?;
    let run = omega.embed(&graph)?;
    println!("{}", run.summary());

    let f1 = node_classification_micro_f1(&run.embedding, &labels, 0.5, 5);
    let random = Embedding::from_matrix(&gaussian_matrix(graph.rows() as usize, 32, 9));
    let f1_floor = node_classification_micro_f1(&random, &labels, 0.5, 5);

    println!("\nnode classification micro-F1 (50% train / 50% test):");
    println!("  OMeGa embedding  {f1:.3}");
    println!("  random floor     {f1_floor:.3}  (chance = 0.25)");
    assert!(
        f1 > 0.8,
        "community structure should be easily recoverable (got {f1})"
    );

    // Show a confusion sketch: per community, the majority prediction hit
    // rate via nearest-centroid in embedding space.
    let d = run.embedding.dim();
    let mut centroids = vec![vec![0f64; d]; sbm.communities as usize];
    let mut counts = vec![0usize; sbm.communities as usize];
    for v in 0..graph.rows() {
        let c = labels[v as usize] as usize;
        counts[c] += 1;
        for (i, &x) in run.embedding.vector(v).iter().enumerate() {
            centroids[c][i] += x as f64;
        }
    }
    println!("\nper-community nearest-centroid accuracy:");
    for c in 0..sbm.communities as usize {
        for x in &mut centroids[c] {
            *x /= counts[c] as f64;
        }
    }
    for c in 0..sbm.communities as usize {
        let mut hit = 0usize;
        let mut total = 0usize;
        for v in 0..graph.rows() {
            if labels[v as usize] as usize != c {
                continue;
            }
            total += 1;
            let emb = run.embedding.vector(v);
            let best = (0..centroids.len())
                .max_by(|&a, &b| {
                    let da: f64 = emb
                        .iter()
                        .zip(&centroids[a])
                        .map(|(&x, &m)| x as f64 * m)
                        .sum();
                    let db: f64 = emb
                        .iter()
                        .zip(&centroids[b])
                        .map(|(&x, &m)| x as f64 * m)
                        .sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("non-empty");
            if best == c {
                hit += 1;
            }
        }
        println!("  community {c}: {:.1}%", hit as f64 / total as f64 * 100.0);
    }
    Ok(())
}
