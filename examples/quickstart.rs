//! Quickstart: embed a graph with OMeGa on the simulated heterogeneous
//! memory machine and inspect the result.
//!
//! Run: `cargo run -p omega --release --example quickstart`

use omega::{Omega, OmegaConfig};
use omega_graph::{EdgeList, GraphBuilder, RmatConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Graphs can come from an edge-list text (the SNAP format) ...
    let text = "0 1\n1 2\n2 0\n2 3\n";
    let tiny = GraphBuilder::from_edge_list(&EdgeList::parse(text)?).build_csr()?;
    println!(
        "parsed a tiny graph: |V|={} |E|={}",
        tiny.rows(),
        tiny.nnz() / 2
    );

    // ... or from the built-in seeded R-MAT generator.
    let graph = RmatConfig::social(2_000, 30_000, 42).generate_csr()?;
    println!(
        "generated a scale-free graph: |V|={} |E|={} maxdeg={}",
        graph.rows(),
        graph.nnz() / 2,
        graph.max_degree()
    );

    // The full OMeGa system: CSDB format, EaTA allocation, WoFP prefetch,
    // NaDP placement and ASL streaming on the scaled two-socket DRAM+PM
    // machine. 16-dimensional embeddings keep the example fast.
    let omega = Omega::new(OmegaConfig::default().with_dim(16).with_threads(8))?;
    let run = omega.embed(&graph)?;

    println!("\n{}", run.summary());

    // Per-node vectors are row-major, in original node order.
    let v0 = run.embedding.vector(0);
    println!("\nnode 0 embedding (first 4 dims): {:?}", &v0[..4]);

    // Nearest neighbours in embedding space tend to be graph neighbours.
    println!("\nnearest neighbours of node 0 by cosine similarity:");
    for (node, score) in run.embedding.nearest(0, 5) {
        let is_neighbor = graph.row(0).0.binary_search(&node).is_ok();
        println!(
            "  node {node:>5}  cos={score:.3}  graph-adjacent: {}",
            if is_neighbor { "yes" } else { "no" }
        );
    }

    // The embedding serialises in the word2vec text format.
    let text = run.embedding.to_text();
    println!(
        "\nserialised embedding: {} bytes, header {:?}",
        text.len(),
        text.lines().next().unwrap()
    );
    Ok(())
}
