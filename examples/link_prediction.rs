//! Link prediction — the first downstream task the paper's introduction
//! motivates (e.g. Twitter's who-to-follow).
//!
//! Hold out a fraction of a graph's edges, embed the remainder with OMeGa,
//! and rank held-out pairs against random non-edges by embedding dot
//! product; report ROC-AUC. Also compares against a DeepWalk-style
//! random-walk + SGNS pipeline built from the `omega-walk` substrate.
//!
//! Run: `cargo run -p omega --release --example link_prediction`

use omega::{Omega, OmegaConfig};
use omega_embed::eval::link_prediction_auc;
use omega_embed::{Embedding, Metric};
use omega_graph::{GraphBuilder, RmatConfig};
use omega_walk::{pairs_from_walks, SgnsConfig, SgnsModel, WalkConfig, Walker};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scale-free graph and an 85/15 train/test edge split.
    let full = RmatConfig::social(1_500, 18_000, 99).generate_csr()?;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut train = GraphBuilder::new(full.rows());
    let mut held_out: Vec<(u32, u32)> = Vec::new();
    for u in 0..full.rows() {
        for &v in full.row(u).0 {
            if u < v {
                if rng.gen::<f64>() < 0.15 {
                    held_out.push((u, v));
                } else {
                    train.add_edge(u, v, 1.0)?;
                }
            }
        }
    }
    let train = train.build_csr()?;
    println!(
        "train graph: |V|={} |E|={}; held out {} edges",
        train.rows(),
        train.nnz() / 2,
        held_out.len()
    );

    // OMeGa / ProNE embeddings of the training graph.
    let omega = Omega::new(OmegaConfig::default().with_dim(32).with_threads(8))?;
    let run = omega.embed(&train)?;
    println!("OMeGa embedding done: {}", run.summary());

    // DeepWalk baseline: walks + skip-gram negative sampling.
    let walker = Walker::new(&train, WalkConfig::deepwalk(6, 20, 3));
    let walks = walker.generate_all();
    let pairs = pairs_from_walks(&walks, 4);
    let unigram = omega_walk::corpus::unigram_counts(&walks, train.rows());
    let mut sgns = SgnsModel::new(
        train.rows(),
        SgnsConfig {
            dim: 32,
            epochs: 3,
            ..SgnsConfig::default()
        },
    );
    sgns.train(&pairs, &unigram);
    let deepwalk = Embedding::from_matrix(&sgns.embedding());
    println!(
        "DeepWalk baseline done: {} walks, {} skip-gram pairs",
        walks.len(),
        pairs.len()
    );

    // Score held-out edges vs random non-edges.
    let auc_of = |emb: &Embedding| -> f64 {
        let mut wins = 0.0;
        let mut total = 0.0;
        let mut rng = SmallRng::seed_from_u64(13);
        for &(u, v) in &held_out {
            let pos = emb.dot(u, v);
            // One random non-edge per held-out edge.
            loop {
                let a = rng.gen_range(0..full.rows());
                let b = rng.gen_range(0..full.rows());
                if a != b && full.row(a).0.binary_search(&b).is_err() {
                    let neg = emb.dot(a, b);
                    wins += if pos > neg {
                        1.0
                    } else if pos == neg {
                        0.5
                    } else {
                        0.0
                    };
                    total += 1.0;
                    break;
                }
            }
        }
        wins / total
    };

    let auc_omega = auc_of(&run.embedding);
    let auc_deepwalk = auc_of(&deepwalk);
    // Sanity AUC on the training edges themselves (easier).
    let auc_train = link_prediction_auc(&run.embedding, &train, 500, 3);

    println!("\nheld-out link prediction AUC:");
    println!("  OMeGa (ProNE)   {auc_omega:.3}");
    println!("  DeepWalk + SGNS {auc_deepwalk:.3}");
    println!("  (train-edge AUC for reference: {auc_train:.3})");
    assert!(auc_omega > 0.6, "OMeGa embedding should beat chance");

    // Who-to-follow: rank candidate follows for the hub (RMAT puts the
    // highest degrees on the lowest ids) by cosine top-k, skipping nodes it
    // already links to.
    let hub = 0u32;
    let existing = train.row(hub).0;
    let emb = &run.embedding;
    let recs: Vec<(u32, f32)> = emb
        .top_k(emb.vector(hub), 16, Metric::Cosine)
        .into_iter()
        .filter(|&(v, _)| v != hub && existing.binary_search(&v).is_err())
        .take(5)
        .collect();
    println!("\nwho-to-follow for node {hub} (cosine top-k, non-neighbours):");
    for (v, score) in &recs {
        println!("  node {v:<6} score {score:.3}");
    }
    assert!(!recs.is_empty());
    Ok(())
}
