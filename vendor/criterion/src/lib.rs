//! Minimal `criterion` stand-in: same macro/type surface, but instead of
//! statistical sampling it runs each benchmark a handful of iterations and
//! prints the mean wall time. Enough for `cargo bench` to compile, run, and
//! give a rough signal offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// Benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        bencher.report(&label);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for parameterised benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; times the `iter` payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let start = Instant::now();
        let out = payload();
        self.total += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<40} (no iterations)");
        } else {
            let mean = self.total / self.iters as u32;
            println!("{label:<40} {mean:>12.2?}/iter over {} iters", self.iters);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    bencher.report(label);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
