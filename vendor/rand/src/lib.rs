//! Minimal `rand` stand-in: the `RngCore`/`Rng`/`SeedableRng` trait stack
//! and an xoshiro256++ `SmallRng`, covering exactly the API the workspace
//! uses (`gen`, `gen_range`, `gen_bool`, `seed_from_u64`).
//!
//! Sequences differ from the real `rand` crate; in-repo code only relies
//! on determinism for a fixed seed, which this implementation provides.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by `Rng::gen()` (the `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty => $std:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u: $t = <$t as StandardSample>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32 => f32, f64 => f64);

/// High-level convenience methods, available on every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and of far higher quality than the
    /// LCGs typically hidden behind "small" RNGs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn sum3<R: RngCore>(mut rng: R) -> u64 {
            rng.next_u64() ^ rng.next_u64() ^ rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = sum3(&mut rng);
        let _: f64 = (&mut rng).gen();
    }
}
