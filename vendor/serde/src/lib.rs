//! Minimal `serde` stand-in with a *value-tree* data model.
//!
//! Instead of the real serde's visitor architecture, `Serialize` renders a
//! type into a self-describing [`Value`] tree and `Deserialize` rebuilds the
//! type from one. Code that only uses `#[derive(Serialize, Deserialize)]`
//! (no field attributes) is source-compatible; exporters walk the `Value`
//! tree to produce JSON or other formats.
//!
//! Encoding conventions (mirrored by the `serde_derive` stub):
//! * named struct        → `Value::Map` in declaration order
//! * newtype struct      → the inner value, transparently
//! * n-field tuple struct→ `Value::Seq`
//! * unit struct         → `Value::Null`
//! * unit enum variant   → `Value::Str(variant_name)`
//! * data enum variant   → one-entry `Value::Map { variant_name: payload }`

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(message: impl Into<String>) -> DeError {
        DeError(message.into())
    }

    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Convenience: serialize any value to a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Convenience: deserialize a `T` from a `Value` tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, DeError> {
    T::from_value(v)
}

// ---- helpers used by the derive-generated code -----------------------------

pub fn expect_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    v.as_map().ok_or_else(|| DeError::expected("map", ty))
}

pub fn expect_seq<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], DeError> {
    let seq = v
        .as_seq()
        .ok_or_else(|| DeError::expected("sequence", ty))?;
    if seq.len() != len {
        return Err(DeError::msg(format!(
            "expected sequence of length {len} for {ty}, got {}",
            seq.len()
        )));
    }
    Ok(seq)
}

pub fn map_field<'a>(m: &'a [(String, Value)], key: &str, ty: &str) -> Result<&'a Value, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{key}` in {ty}")))
}

// ---- impls for std types ---------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str()
            .ok_or_else(|| DeError::expected("string", "String"))?
            .to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Interned-for-life: the only `&'static str` fields in the workspace
    /// are dataset names deserialized a handful of times per process, so
    /// leaking the backing allocation is acceptable for this stub.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "&'static str"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = expect_seq(v, "array", N)?;
        let items: Vec<T> = seq.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("array length mismatch (want {N})")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = expect_seq(v, "2-tuple", 2)?;
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = expect_seq(v, "3-tuple", 3)?;
        Ok((
            A::from_value(&seq[0])?,
            B::from_value(&seq[1])?,
            C::from_value(&seq[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = Some(9);
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), opt);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Str("x".to_string())),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn numeric_leniency() {
        // Serializers may emit U64 where a deserializer asks for f64.
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::I64(3)).unwrap(), 3);
        assert!(u32::from_value(&Value::I64(-3)).is_err());
    }
}
