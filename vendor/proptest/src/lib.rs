//! Minimal `proptest` stand-in: a deterministic property-test runner with
//! the strategy combinators the workspace uses (`prop_map`, `prop_flat_map`,
//! ranges, tuples, `Just`, `prop_oneof!`, `collection::vec`, `any`).
//!
//! Each test case is generated from an RNG seeded purely by the case index,
//! so failures reproduce across runs and machines. There is **no shrinking**:
//! a failing case reports its index and message as-is.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Value generator. Object-safe: combinators are `Self: Sized`-gated so
    /// `Box<dyn Strategy>` works (needed by `prop_oneof!`).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: rand::StandardSample>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: rand::StandardSample> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen::<T>()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element count for `vec`: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-case RNG, seeded purely by the case index (deterministic runs).
    pub struct TestRng {
        pub rng: SmallRng,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> TestRng {
            // Golden-ratio stride decorrelates consecutive case seeds.
            TestRng {
                rng: SmallRng::seed_from_u64(0x9E3779B97F4A7C15u64.wrapping_mul(case as u64 + 1)),
            }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }

        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError(format!("rejected: {}", message.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is honoured by the stub.
    ///
    /// Like upstream proptest, the `PROPTEST_CASES` environment variable
    /// pins the case count. The stub goes one step further and lets it
    /// override `with_cases` too, so CI can fix every suite's runtime (and
    /// seed-space coverage) from one place regardless of per-file defaults.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    /// `PROPTEST_CASES` as a case count, if set and parseable.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(64),
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run `cases` generated inputs each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // No rejection/resampling machinery: treat as a vacuous pass.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        R,
        G,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), v in crate::collection::vec(0i32..100, 0..8)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn map_and_oneof(c in prop_oneof![Just(Color::R), Just(Color::G), Just(Color::B)],
                         n in (1usize..4).prop_map(|k| k * 2)) {
            prop_assert!(matches!(c, Color::R | Color::G | Color::B));
            prop_assert!(n % 2 == 0 && n <= 6);
            prop_assert_eq!(n / 2 * 2, n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
