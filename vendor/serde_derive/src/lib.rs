//! Hand-written `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stub. No `syn`/`quote`: the item's `TokenStream` is parsed directly (just
//! enough to recover the shape — names of fields and variants) and the impl
//! is generated as a source string.
//!
//! Supported shapes: non-generic structs (named / tuple / unit) and enums
//! whose variants are unit, named-field, or tuple. Field *types* are never
//! inspected — the generated code defers to `::serde::Serialize` /
//! `::serde::Deserialize` impls. serde field attributes are not supported
//! (none are used in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- item model ------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it: TokenIter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);

    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive stub: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };

    Item { name, shape }
}

/// Skip leading `#[...]` attributes (incl. doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(it: &mut TokenIter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive stub: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if matches!(
                    it.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    it.next();
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens up to and including a comma at angle-bracket depth 0, or to
/// the end of the stream. Parentheses/brackets/braces arrive as `Group`s so
/// only `<`/`>` need explicit depth tracking.
fn skip_past_comma(it: &mut TokenIter) {
    let mut depth: i64 = 0;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut it: TokenIter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        skip_past_comma(&mut it);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it: TokenIter = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_past_comma(&mut it);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut it: TokenIter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                it.next();
                VariantFields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume trailing `,` (and any explicit `= discr`, unused here).
        skip_past_comma(&mut it);
    }
    variants
}

// ---- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{entries}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => format!(
            "{name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Map(::std::vec![{entries}]))]),"
            )
        }
        VariantFields::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
             ::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let entries: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Seq(::std::vec![{entries}]))]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(__m, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let __m = ::serde::expect_map(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?,"))
                .collect();
            format!(
                "let __seq = ::serde::expect_seq(__v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
        })
        .collect();

    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::map_field(__m, \"{f}\", \"{name}::{vname}\")?)?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __m = ::serde::expect_map(__payload, \"{name}::{vname}\")?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n}}"
                    ))
                }
                VariantFields::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__payload)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?,"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __seq = \
                         ::serde::expect_seq(__payload, \"{name}::{vname}\", {n})?;\n\
                         ::std::result::Result::Ok({name}::{vname}({inits}))\n}}"
                    ))
                }
            }
        })
        .collect();

    format!(
        "match __v {{\n\
           ::serde::Value::Str(__s) => match __s.as_str() {{\n\
             {unit_arms}\n\
             __other => ::std::result::Result::Err(::serde::DeError::msg(\
               ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
           }},\n\
           ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
             let (__k, __payload) = &__entries[0];\n\
             match __k.as_str() {{\n\
               {data_arms}\n\
               __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }}\n\
           }},\n\
           _ => ::std::result::Result::Err(\
             ::serde::DeError::expected(\"variant\", \"{name}\")),\n\
         }}"
    )
}
