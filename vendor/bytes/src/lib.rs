//! Minimal `bytes` stand-in: a growable byte buffer plus the `BufMut`
//! writer trait, over a plain `Vec<u8>`.

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write-side buffer trait (the subset the workspace uses).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"ab");
        b.put_u8(b'c');
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), b"abc");
        assert_eq!(&b[..2], b"ab");
    }
}
