//! Minimal `parking_lot` stand-in over `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`); a poisoned
//! std lock is recovered transparently, mirroring parking_lot's lack of
//! poisoning.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
