//! Integration tests pinning the paper's headline experiment *shapes* at a
//! quick twin scale — the same assertions the full harness binaries print.

use omega_graph::read_cost::{csdb_read_time, csr_read_time};
use omega_graph::{Csdb, Dataset};
use omega_hetmem::{BandwidthModel, DeviceKind, MemSystem, Topology};
use omega_linalg::gaussian_matrix;
use omega_spmm::{AllocScheme, SpmmConfig, SpmmEngine, WofpConfig};

const SCALE: u64 = 4_000;
const THREADS: usize = 16;
const DIM: usize = 32;

fn topo() -> Topology {
    Topology::paper_machine_scaled((24 << 20) / 4)
}

fn spmm_time(cfg: SpmmConfig, csdb: &Csdb, b: &omega_linalg::DenseMatrix) -> f64 {
    let eng = SpmmEngine::new(MemSystem::new(topo()), cfg).unwrap();
    eng.spmm(csdb, b).unwrap().makespan.as_secs_f64()
}

#[test]
fn table2_shape_eata_best_rr_worst() {
    let g = Dataset::Lj.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 2);
    let rr = spmm_time(
        SpmmConfig::omega(THREADS).with_alloc(AllocScheme::RoundRobin),
        &csdb,
        &b,
    );
    let wata = spmm_time(
        SpmmConfig::omega(THREADS).with_alloc(AllocScheme::WaTA),
        &csdb,
        &b,
    );
    let eata = spmm_time(SpmmConfig::omega(THREADS), &csdb, &b);
    assert!(
        rr > wata * 1.5,
        "RR ({rr}) should clearly trail WaTA ({wata})"
    );
    assert!(
        eata <= wata * 1.02,
        "EaTA ({eata}) should not trail WaTA ({wata})"
    );
}

#[test]
fn fig13_shape_eata_cuts_tail_latency() {
    let g = Dataset::Lj.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 3);
    let run = |alloc| {
        let eng = SpmmEngine::new(
            MemSystem::new(topo()),
            SpmmConfig::omega(THREADS).with_alloc(alloc),
        )
        .unwrap();
        eng.spmm(&csdb, &b).unwrap().stats
    };
    let wata = run(AllocScheme::WaTA);
    let eata = run(AllocScheme::eata_default());
    assert!(
        eata.p99_s < wata.p99_s,
        "EaTA P99 {} should beat WaTA {}",
        eata.p99_s,
        wata.p99_s
    );
    assert!(eata.p95_s <= wata.p95_s * 1.02);
}

#[test]
fn fig14_shape_wofp_improves_pm_resident_spmm() {
    let g = Dataset::Or.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 4);
    let without = spmm_time(
        SpmmConfig::omega(THREADS).with_asl(None).with_wofp(None),
        &csdb,
        &b,
    );
    let with = spmm_time(
        SpmmConfig::omega(THREADS)
            .with_asl(None)
            .with_wofp(Some(WofpConfig::default())),
        &csdb,
        &b,
    );
    let improvement = 1.0 - with / without;
    assert!(
        improvement > 0.10,
        "WoFP should cut >=10% of PM-resident SpMM time (got {:.1}%)",
        improvement * 100.0
    );
}

#[test]
fn fig15_shape_nadp_beats_interleave() {
    let g = Dataset::Or.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 5);
    let with = spmm_time(SpmmConfig::omega(THREADS).with_asl(None), &csdb, &b);
    let without = spmm_time(
        SpmmConfig::omega(THREADS).with_asl(None).with_nadp(false),
        &csdb,
        &b,
    );
    assert!(
        without / with > 1.1,
        "NaDP should speed the PM-resident SpMM by >=1.1x (got {:.2}x)",
        without / with
    );
}

#[test]
fn fig16_shape_throughput_grows_with_threads_to_saturation() {
    let g = Dataset::Pk.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 6);
    let tp = |threads| {
        let eng = SpmmEngine::new(MemSystem::new(topo()), SpmmConfig::omega(threads)).unwrap();
        eng.spmm(&csdb, &b).unwrap().throughput_mnnz_s()
    };
    let t1 = tp(1);
    let t4 = tp(4);
    let t8 = tp(8);
    assert!(t4 > t1 * 2.0, "throughput should scale: {t1} -> {t4}");
    assert!(t8 > t4, "still scaling at 8 threads: {t4} -> {t8}");
}

#[test]
fn fig19a_shape_csdb_reads_faster() {
    let model = BandwidthModel::paper_machine();
    for d in [Dataset::Pk, Dataset::Tw] {
        let g = d.load_scaled(SCALE).unwrap();
        let csdb = Csdb::from_csr(&g).unwrap();
        let speedup = csr_read_time(&g, &model, DeviceKind::Pm).ratio(csdb_read_time(
            &csdb,
            &model,
            DeviceKind::Pm,
        ));
        assert!(
            speedup > 1.1 && speedup < 2.5,
            "{}: CSDB read speedup {speedup} outside the Fig. 19(a) band",
            d.label()
        );
    }
}

#[test]
fn fig19c_shape_sigma_sweep_is_u_shaped() {
    let g = Dataset::Pk.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 7);
    let time = |sigma| {
        spmm_time(
            SpmmConfig::omega(THREADS)
                .with_asl(None)
                .with_wofp(Some(WofpConfig {
                    sigma,
                    ..WofpConfig::default()
                })),
            &csdb,
            &b,
        )
    };
    let tiny = time(0.002);
    let mid = time(0.1);
    let huge = time(0.9);
    assert!(
        mid < tiny,
        "more staging should beat near-none: {mid} !< {tiny}"
    );
    assert!(
        huge > mid * 0.95,
        "oversized staging should stop helping: {huge} vs {mid}"
    );
}
