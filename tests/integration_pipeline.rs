//! Cross-crate integration: the full embedding pipeline from raw edges to
//! evaluated embeddings under every system variant.

use omega::{Omega, OmegaConfig, SystemVariant};
use omega_embed::eval::{link_prediction_auc, node_classification_micro_f1};
use omega_graph::{Dataset, EdgeList, GraphBuilder, RmatConfig, SbmConfig};
use omega_hetmem::Topology;

fn quick(dim: usize) -> OmegaConfig {
    OmegaConfig::default().with_threads(8).with_dim(dim)
}

#[test]
fn edge_list_to_embedding_end_to_end() {
    // Build a graph from text, embed it, serialise and reparse the result.
    let mut text = String::new();
    let csr = RmatConfig::social(400, 3_000, 50).generate_csr().unwrap();
    for u in 0..csr.rows() {
        let (cols, vals) = csr.row(u);
        for (&v, &w) in cols.iter().zip(vals) {
            if u < v {
                // Duplicate R-MAT samples sum into weights > 1; keep them.
                text.push_str(&format!("{u} {v} {w}\n"));
            }
        }
    }
    let parsed = EdgeList::parse(&text).unwrap();
    // High-id nodes can be isolated in the R-MAT sample, so give the
    // builder the true node count rather than inferring it.
    let mut builder = GraphBuilder::new(csr.rows());
    for (u, v, w) in parsed.iter() {
        builder.add_edge(u, v, w).unwrap();
    }
    let graph = builder.build_csr().unwrap();
    assert_eq!(graph, csr);

    let run = Omega::new(quick(16)).unwrap().embed(&graph).unwrap();
    let round_tripped = omega_embed::Embedding::parse(&run.embedding.to_text()).unwrap();
    assert_eq!(round_tripped.nodes(), run.embedding.nodes());
    assert_eq!(round_tripped.dim(), 16);
    // Serialisation is lossy to 6 decimals only.
    for v in (0..graph.rows()).step_by(37) {
        for (a, b) in round_tripped.vector(v).iter().zip(run.embedding.vector(v)) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

#[test]
fn all_variants_produce_identical_embeddings() {
    // Memory placement must never change numerics — only simulated time.
    let g = RmatConfig::social(300, 2_500, 8).generate_csr().unwrap();
    let reference = Omega::new(quick(8)).unwrap().embed(&g).unwrap();
    for v in [
        SystemVariant::OmegaDram,
        SystemVariant::OmegaPm,
        SystemVariant::OmegaWithoutWofp,
        SystemVariant::OmegaWithoutNadp,
        SystemVariant::OmegaWithoutAsl,
    ] {
        let run = Omega::new(quick(8).with_variant(v))
            .unwrap()
            .embed(&g)
            .unwrap();
        assert_eq!(
            run.embedding,
            reference.embedding,
            "variant {} diverged numerically",
            v.label()
        );
    }
}

#[test]
fn embeddings_are_useful_downstream() {
    let sbm = SbmConfig::assortative(400, 31);
    let g = sbm.generate_csr().unwrap();
    let run = Omega::new(quick(16)).unwrap().embed(&g).unwrap();
    let auc = link_prediction_auc(&run.embedding, &g, 300, 3);
    assert!(auc > 0.75, "link prediction auc={auc}");
    let f1 = node_classification_micro_f1(&run.embedding, &sbm.labels(), 0.6, 4);
    assert!(f1 > 0.7, "classification f1={f1}");
}

#[test]
fn report_breakdown_is_consistent() {
    let g = Dataset::Pk.load_scaled(8_000).unwrap();
    let run = Omega::new(quick(16)).unwrap().embed(&g).unwrap();
    let r = &run.report;
    assert_eq!(
        run.total_time(),
        r.read_time + r.factorization_time + r.propagation_time
    );
    assert!(r.spmm_time <= r.factorization_time + r.propagation_time);
    assert!(r.spmm_share() > 0.3, "SpMM share {}", r.spmm_share());
    assert!(r.spmm_count > 5);
}

#[test]
fn runs_are_deterministic() {
    let g = RmatConfig::social(256, 2_000, 12).generate_csr().unwrap();
    let a = Omega::new(quick(8)).unwrap().embed(&g).unwrap();
    let b = Omega::new(quick(8)).unwrap().embed(&g).unwrap();
    assert_eq!(a.embedding, b.embedding);
    assert_eq!(a.total_time(), b.total_time());
}

#[test]
fn capacity_failures_are_typed_not_panics() {
    let g = Dataset::Tw2010.load_scaled(8_000).unwrap();
    let topo = Topology::paper_machine_scaled(3 << 20);
    let cfg = quick(64)
        .with_topology(topo)
        .with_variant(SystemVariant::OmegaDram);
    let err = Omega::new(cfg).unwrap().embed(&g).unwrap_err();
    assert!(err.is_oom());
}
