//! Golden-snapshot tests: the full metrics JSONL of a fixed-seed pipeline
//! run and a fixed-seed serving run (fault-free and under a fault plan) are
//! committed under `tests/golden/` and diffed byte-for-byte in CI.
//!
//! These freeze the *entire* observable surface — every counter, gauge,
//! histogram bucket, and simulated-time total — so an accidental change to
//! the cost model, the scheduler, the cache policy, or the fault schedule
//! shows up as a diff, not as a silently shifted number.
//!
//! To bless an intentional change: `OMEGA_UPDATE_GOLDEN=1 cargo test -p
//! omega --test integration_golden`, then review and commit the diff.

use omega::faults::{install_plan, FaultPlanSpec};
use omega::hetmem::{DeviceKind, MemSystem, Placement, Topology};
use omega::obs::{Recorder, Track};
use omega::serve::{
    EmbedServer, IndexMode, Popularity, RequestStream, ServeConfig, WorkloadConfig,
};
use omega::{Omega, OmegaConfig};
use omega_graph::RmatConfig;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Compare `got` against the committed snapshot, or rewrite the snapshot
/// when `OMEGA_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("OMEGA_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); bless with OMEGA_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        got, want,
        "{name} drifted from the committed snapshot; if the change is \
         intentional, bless it with OMEGA_UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// The training pipeline's metrics for one fixed-seed embed run.
#[test]
fn pipeline_metrics_match_golden() {
    let csr = RmatConfig::social(512, 4_000, 3).generate_csr().unwrap();
    let rec = Recorder::enabled();
    let omega = Omega::new(OmegaConfig::default().with_dim(8).with_threads(4))
        .unwrap()
        .with_recorder(rec.clone());
    omega.embed(&csr).unwrap();
    assert_golden("pipeline_metrics.jsonl", &rec.metrics_jsonl());
}

fn serve_metrics(plan: Option<FaultPlanSpec>) -> String {
    serve_metrics_with_threads(plan, 1)
}

fn serve_metrics_with_threads(plan: Option<FaultPlanSpec>, threads: usize) -> String {
    let emb = omega::Embedding::from_matrix(&omega::linalg::gaussian_matrix(2_000, 8, 42));
    let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
    let sys = match plan {
        Some(spec) => install_plan(&sys, spec),
        None => sys,
    };
    let cfg = ServeConfig::new(8 * 32 * 8 * 4)
        .rows_per_shard(32)
        .cold(Placement::node(0, DeviceKind::Pm))
        .threads(threads);
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, cfg)
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(2_000, Popularity::Zipf { s: 1.0 }, 7).with_topk(0.02, 5),
    );
    srv.run(&mut load, 2_000);
    rec.metrics_jsonl()
}

/// The serving run of [`serve_metrics_with_threads`] with an IVF index in
/// front of the top-k queries: auto `nlist`/`nprobe`, a hot-list budget
/// small enough that some lists land on the cold (PM) tier, so the
/// snapshot freezes centroid-scan, hot-probe and cold-probe accounting —
/// the whole `serve.ivf.*` surface — alongside everything the exact run
/// already pins.
fn ivf_serve_metrics_with_threads(plan: Option<FaultPlanSpec>, threads: usize) -> String {
    let emb = omega::Embedding::from_matrix(&omega::linalg::gaussian_matrix(2_000, 8, 42));
    let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
    let sys = match plan {
        Some(spec) => install_plan(&sys, spec),
        None => sys,
    };
    let cfg = ServeConfig::new(8 * 32 * 8 * 4)
        .rows_per_shard(32)
        .cold(Placement::node(0, DeviceKind::Pm))
        .threads(threads)
        .index(IndexMode::Ivf {
            nlist: 0,
            nprobe: 0,
        })
        .ivf_hot_bytes(8 << 10);
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, cfg)
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(2_000, Popularity::Zipf { s: 1.0 }, 7).with_topk(0.02, 5),
    );
    srv.run(&mut load, 2_000);
    rec.metrics_jsonl()
}

/// One fixed-seed training (ProNE embed) run with `wall_threads` workers
/// on both the SpMM workload pool and the dense kernels, optionally under
/// an installed fault plan. Returns the full metrics JSONL export.
fn prone_metrics_with_threads(plan: Option<FaultPlanSpec>, wall_threads: usize) -> String {
    use omega_embed::prone::{Prone, ProneConfig};
    use omega_spmm::{SpmmConfig, SpmmEngine};
    let csr = RmatConfig::social(512, 4_000, 3).generate_csr().unwrap();
    let sys = MemSystem::new(Topology::paper_machine_scaled(16 << 20));
    let sys = match plan {
        Some(spec) => install_plan(&sys, spec),
        None => sys,
    };
    let rec = Recorder::enabled();
    let engine = SpmmEngine::new(sys, SpmmConfig::omega(4))
        .unwrap()
        .with_recorder(rec.clone())
        .with_wall_threads(wall_threads);
    let prone = Prone::new(
        engine,
        ProneConfig {
            dim: 8,
            oversample: 8,
            threads: wall_threads,
            ..ProneConfig::default()
        },
    );
    prone.embed(&csr).unwrap();
    rec.metrics_jsonl()
}

/// A fixed-seed training run fanned out on an 8-thread worker pool across
/// the SpMM workloads and the blocked dense kernels: freezes the parallel
/// training path's observable surface. Wall workers partition only output
/// panels and workload indices, so this snapshot is — by design —
/// byte-identical to a sequential run, and the test pins that equality.
#[test]
fn parallel_prone_metrics_match_golden() {
    let got = prone_metrics_with_threads(None, 8);
    assert_golden("prone_metrics_parallel.jsonl", &got);
    assert_eq!(
        got,
        prone_metrics_with_threads(None, 1),
        "8-wall-thread training metrics drifted from the sequential run"
    );
}

/// The same training run under a fixed fault plan: the injected schedule is
/// keyed by (column batch, workload index), so retries and their simulated
/// cost replay byte-identically at any wall-thread count.
#[test]
fn parallel_faulted_prone_metrics_match_golden() {
    let spec = || FaultPlanSpec::new(1729).with_transient(DeviceKind::Pm, 0.05, 3_000);
    let got = prone_metrics_with_threads(Some(spec()), 8);
    assert!(
        got.contains(r#""fault.injected""#),
        "fault counters missing from training export"
    );
    assert_golden("prone_metrics_parallel_faulted.jsonl", &got);
    assert_eq!(
        got,
        prone_metrics_with_threads(Some(spec()), 1),
        "faulted 8-wall-thread training metrics drifted from the sequential run"
    );
}

/// The serving path's metrics for one fixed-seed run, no faults.
#[test]
fn serve_metrics_match_golden() {
    assert_golden("serve_metrics.jsonl", &serve_metrics(None));
}

/// The same serving run under a fixed fault plan: freezes the injected
/// schedule, the retry/hedge accounting, and their simulated-time cost.
#[test]
fn faulted_serve_metrics_match_golden() {
    let spec = FaultPlanSpec::new(1729).with_transient(DeviceKind::Pm, 0.05, 3_000);
    assert_golden("serve_metrics_faulted.jsonl", &serve_metrics(Some(spec)));
}

/// The IVF serving run's metrics for one fixed-seed run, no faults: pins
/// every `serve.ivf.*` counter and the probe traffic's simulated cost, and
/// — because parallelism only partitions lists and shards — the 8-thread
/// export must be byte-identical to the sequential snapshot.
#[test]
fn ivf_serve_metrics_match_golden() {
    let got = ivf_serve_metrics_with_threads(None, 1);
    assert!(
        got.contains(r#""serve.ivf.queries""#),
        "IVF counters missing from serving export"
    );
    assert_golden("serve_metrics_ivf.jsonl", &got);
    assert_eq!(
        got,
        ivf_serve_metrics_with_threads(None, 8),
        "8-thread IVF serving metrics drifted from the sequential run"
    );
}

/// The same IVF serving run under the fixed fault plan the exact-path
/// golden uses: cold-list probes join the injected schedule (streams keyed
/// by list id), so retries/hedges on the probe path replay byte-identically
/// at any thread count.
#[test]
fn faulted_ivf_serve_metrics_match_golden() {
    let spec = || FaultPlanSpec::new(1729).with_transient(DeviceKind::Pm, 0.05, 3_000);
    let got = ivf_serve_metrics_with_threads(Some(spec()), 1);
    assert_golden("serve_metrics_ivf_faulted.jsonl", &got);
    assert_eq!(
        got,
        ivf_serve_metrics_with_threads(Some(spec()), 8),
        "faulted 8-thread IVF serving metrics drifted from the sequential run"
    );
}

/// The same faulted serving run fanned out on an 8-thread worker pool:
/// freezes the parallel path's observable surface. Because fault streams
/// key off *what* is processed and per-shard simulated costs merge in a
/// fixed order, this snapshot is — by design — byte-identical to the
/// sequential one, and the test pins that equality too.
#[test]
fn parallel_faulted_serve_metrics_match_golden() {
    let spec = FaultPlanSpec::new(1729).with_transient(DeviceKind::Pm, 0.05, 3_000);
    let got = serve_metrics_with_threads(Some(spec), 8);
    assert_golden("serve_metrics_parallel_faulted.jsonl", &got);
    if let Ok(sequential) = std::fs::read_to_string(golden_path("serve_metrics_faulted.jsonl")) {
        assert_eq!(
            got, sequential,
            "parallel faulted snapshot drifted from the sequential one"
        );
    }
}
