//! Cross-crate integration and property-based tests for the graph formats
//! and the SpMM engine's numerics.

use omega_graph::convert::{csdb_to_csr, csr_to_csdb};
use omega_graph::{Csdb, Csr, GraphBuilder, RmatConfig};
use omega_hetmem::{MemSystem, Topology};
use omega_linalg::{gaussian_matrix, DenseMatrix};
use omega_spmm::{AllocScheme, SpmmConfig, SpmmEngine};
use proptest::prelude::*;

/// Strategy: a random undirected graph as an edge set over `n` nodes.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..60, 1usize..120).prop_flat_map(|(n, edges)| {
        proptest::collection::vec((0..n, 0..n), edges).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
            // Ensure non-empty.
            b.add_edge(0, 1 % n.max(2), 1.0).ok();
            b.build_csr().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSDB -> CSR round-trips to the original matrix for any graph.
    #[test]
    fn csdb_roundtrip(csr in arb_graph()) {
        let csdb = csr_to_csdb(&csr).unwrap();
        prop_assert_eq!(csdb_to_csr(&csdb), csr);
    }

    /// Deg_ptr equals the cumulative degree for every node (Eq. 1).
    #[test]
    fn deg_ptr_is_cumulative(csr in arb_graph()) {
        let csdb = Csdb::from_csr(&csr).unwrap();
        let mut cum = 0u64;
        for v in 0..csdb.rows() {
            prop_assert_eq!(csdb.deg_ptr(v), cum);
            cum += csdb.degree(v) as u64;
        }
        prop_assert_eq!(cum, csdb.nnz() as u64);
    }

    /// The permutation is a bijection and degrees descend along it.
    #[test]
    fn permutation_is_valid(csr in arb_graph()) {
        let csdb = Csdb::from_csr(&csr).unwrap();
        let mut seen = vec![false; csr.rows() as usize];
        for &old in csdb.perm() {
            prop_assert!(!seen[old as usize], "duplicate in perm");
            seen[old as usize] = true;
        }
        let degs: Vec<u32> = (0..csdb.rows()).map(|v| csdb.degree(v)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    /// CSDB SpMV agrees with CSR SpMV through the permutation.
    #[test]
    fn spmv_matches(csr in arb_graph(), seed in 0u64..1000) {
        let csdb = Csdb::from_csr(&csr).unwrap();
        let x = gaussian_matrix(csr.cols() as usize, 1, seed);
        let x_orig: Vec<f32> = x.col(0).to_vec();
        let x_perm: Vec<f32> = csdb.perm().iter().map(|&o| x_orig[o as usize]).collect();
        let y_perm = csdb.spmv(&x_perm).unwrap();
        let y_csr = csr.spmv(&x_orig).unwrap();
        for (new_id, &old) in csdb.perm().iter().enumerate() {
            prop_assert!((y_perm[new_id] - y_csr[old as usize]).abs() < 1e-3);
        }
    }

    /// Every allocation scheme covers all rows and nnz exactly once.
    #[test]
    fn allocations_partition(csr in arb_graph(), threads in 1usize..40) {
        let csdb = Csdb::from_csr(&csr).unwrap();
        for scheme in [
            AllocScheme::RoundRobin,
            AllocScheme::WaTA,
            AllocScheme::eata_default(),
        ] {
            let ws = scheme.allocate(&csdb, threads);
            prop_assert_eq!(ws.len(), threads);
            let nnz: u64 = ws.iter().map(|w| w.nnzs).sum();
            prop_assert_eq!(nnz, csdb.nnz() as u64);
            let rows: usize = ws.iter().map(|w| w.row_count()).sum();
            prop_assert_eq!(rows, csdb.rows() as usize);
        }
    }
}

/// The engine's SpMM equals a dense reference product for random graphs and
/// dense operands, in every configuration that changes the execution path.
#[test]
fn engine_matches_reference_product() {
    let csr = RmatConfig::social(300, 2_400, 9).generate_csr().unwrap();
    let csdb = Csdb::from_csr(&csr).unwrap();
    let b = gaussian_matrix(300, 12, 4);
    let mut reference = DenseMatrix::zeros(300, 12);
    for t in 0..12 {
        reference
            .col_mut(t)
            .copy_from_slice(&csdb.spmv(b.col(t)).unwrap());
    }
    for cfg in [
        SpmmConfig::omega(7),
        SpmmConfig::omega_dram(3),
        SpmmConfig::omega_pm(5),
        SpmmConfig::omega(4).with_alloc(AllocScheme::RoundRobin),
        SpmmConfig::omega(4)
            .with_alloc(AllocScheme::WaTA)
            .with_asl(None),
    ] {
        let eng = SpmmEngine::new(
            MemSystem::new(Topology::paper_machine_scaled(16 << 20)),
            cfg,
        )
        .unwrap();
        let run = eng.spmm(&csdb, &b).unwrap();
        assert!(
            run.result.max_abs_diff(&reference) < 1e-3,
            "config {cfg:?} diverged"
        );
    }
}

/// Operators keep CSDB and CSR consistent.
#[test]
fn operators_agree_across_formats() {
    let csr = RmatConfig::social(200, 1_500, 2).generate_csr().unwrap();
    let csdb = Csdb::from_csr(&csr).unwrap();
    // (A + A) - A == A through both formats.
    let via_csdb = csdb
        .add(&csdb)
        .unwrap()
        .sub(&csdb)
        .unwrap()
        .to_csr_original();
    let via_csr = csr.add(&csr).unwrap().sub(&csr).unwrap();
    assert_eq!(via_csdb, via_csr);
    // Transpose of a symmetric matrix is itself.
    assert_eq!(csdb.transpose().unwrap().to_csr_original(), csr);
}
