//! Chaos suite for the deterministic fault-injection layer
//! (`omega-faults`): under every fault plan the serving and SpMM paths must
//! stay *value-correct* — responses in arrival order, bit-identical to a
//! fault-free run — while retries stay bounded, the fault-resolution
//! identity holds, and the whole injected schedule is a pure function of
//! the plan seed (same seed ⇒ byte-identical metrics JSONL).
//!
//! The plan seed comes from `OMEGA_FAULT_SEED` when set (the CI chaos
//! matrix sweeps it), so the same assertions run under several schedules.

use omega_embed::{Embedding, Metric};
use omega_faults::{install_plan, FaultPlanSpec};
use omega_hetmem::{DeviceKind, MemSystem, Placement, Topology};
use omega_obs::{Recorder, Track};
use omega_serve::{
    EmbedServer, IndexMode, Popularity, Request, RequestKind, RequestStream, Response, ServeConfig,
    WorkloadConfig,
};

const DIM: usize = 8;

/// Plan seed under test: the CI chaos matrix sweeps `OMEGA_FAULT_SEED`;
/// locally the default applies. Every assertion here must hold for *any*
/// seed — the seed only moves which accesses misbehave.
fn plan_seed() -> u64 {
    std::env::var("OMEGA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1729)
}

fn embedding(nodes: u32, seed: u64) -> Embedding {
    Embedding::from_matrix(&omega_linalg::gaussian_matrix(nodes as usize, DIM, seed))
}

fn system() -> MemSystem {
    MemSystem::new(Topology::paper_machine_scaled(8 << 20))
}

fn config(cache_shards: u64) -> ServeConfig {
    ServeConfig::new(cache_shards * 16 * DIM as u64 * 4).rows_per_shard(16)
}

/// The five chaos plans: transient PM faults, an SSD timeout window, a
/// latency spike, a degraded socket, and everything at once. Returned with
/// the cold device each plan targets.
fn chaos_plans(seed: u64) -> Vec<(&'static str, FaultPlanSpec, DeviceKind)> {
    vec![
        (
            "transient-pm",
            FaultPlanSpec::new(seed).with_transient(DeviceKind::Pm, 0.5, 3_000),
            DeviceKind::Pm,
        ),
        (
            "ssd-timeout",
            FaultPlanSpec::new(seed).with_timeout(DeviceKind::Ssd, 0.5, 40_000),
            DeviceKind::Ssd,
        ),
        (
            "pm-spike",
            FaultPlanSpec::new(seed).with_spike(DeviceKind::Pm, 4.0, 0, u64::MAX),
            DeviceKind::Pm,
        ),
        (
            "socket-degrade",
            FaultPlanSpec::new(seed).with_degrade(0, 2.0, 0),
            DeviceKind::Pm,
        ),
        (
            "combined",
            FaultPlanSpec::new(seed)
                .with_transient(DeviceKind::Pm, 0.3, 3_000)
                .with_timeout(DeviceKind::Ssd, 0.3, 40_000)
                .with_degrade(0, 1.5, 0),
            DeviceKind::Pm,
        ),
    ]
}

/// A shard-crossing, duplicated request order with top-k queries mixed in —
/// the batching stress shape from the serving suite.
fn chaos_requests() -> Vec<Request> {
    let mut requests = Request::gets(&[299, 0, 150, 0, 17, 299, 63, 202, 88, 241, 5, 190]);
    requests.insert(
        4,
        Request {
            node: 150,
            kind: RequestKind::top_k(5),
        },
    );
    requests.push(Request {
        node: 63,
        kind: RequestKind::top_k(7),
    });
    requests
}

/// Under every chaos plan, every response arrives in order and is
/// bit-identical to the fault-free answer: retries, hedges, and replica
/// fallbacks change *when*, never *what*.
#[test]
fn responses_under_every_plan_match_fault_free_values() {
    let emb = embedding(300, 2);
    let requests = chaos_requests();

    for (name, spec, cold) in chaos_plans(plan_seed()) {
        let sys = install_plan(&system(), spec);
        let cfg = config(4).cold(Placement::node(0, cold));
        let mut srv = EmbedServer::new(&sys, &emb, cfg).unwrap();

        // Several batches so the high-rate plans fire with near certainty.
        for round in 0..4 {
            let batch = srv.serve_batch(&requests);
            assert_eq!(batch.responses.len(), requests.len(), "plan {name}");
            for (req, resp) in requests.iter().zip(&batch.responses) {
                match (req.kind, resp) {
                    (RequestKind::Get, Response::Vector(v)) => assert_eq!(
                        v.as_slice(),
                        emb.vector(req.node),
                        "plan {name} round {round} node {}",
                        req.node
                    ),
                    (RequestKind::TopK { k, .. }, Response::Neighbors(n)) => assert_eq!(
                        n,
                        &emb.top_k(emb.vector(req.node), k, Metric::Dot),
                        "plan {name} round {round} node {}",
                        req.node
                    ),
                    (kind, resp) => panic!("plan {name}: kind mismatch {kind:?} vs {resp:?}"),
                }
            }
        }

        // The resolution identity: every observed failure resolved exactly
        // once — retried, hedged to the replica, or degraded after the
        // retry budget.
        let st = srv.stats();
        assert_eq!(
            st.faults_injected,
            st.faults_retried + st.hedges_won + st.degraded,
            "plan {name}"
        );
        match name {
            // 50% transient on a 4-shard cache: faults are near-certain,
            // and transients never hedge (hedging is the timeout path).
            "transient-pm" => {
                assert!(st.faults_injected > 0, "plan {name} must fire");
                assert_eq!(st.hedges_won, 0, "plan {name}");
            }
            // 50% SSD timeouts: every injected fault hedges immediately,
            // nothing is retried against a device that timed out.
            "ssd-timeout" => {
                assert!(st.faults_injected > 0, "plan {name} must fire");
                assert_eq!(st.faults_retried, 0, "plan {name}");
                assert_eq!(st.degraded, 0, "plan {name}");
                assert_eq!(st.hedges_won, st.faults_injected, "plan {name}");
            }
            // Spikes and degradation slow accesses down but never fail them.
            "pm-spike" | "socket-degrade" => {
                assert_eq!(st.faults_injected, 0, "plan {name} injects no failures");
            }
            _ => {}
        }
    }
}

/// The IVF probe path under chaos: with a zero hot budget every inverted
/// list lives on the cold tier, so probe reads face the same fault plans
/// as fetches — and every response (Gets and approximate top-k alike)
/// stays bit-identical to a fault-free run of the same index, while the
/// resolution identity keeps balancing with probe traffic folded in.
#[test]
fn ivf_responses_under_every_plan_match_fault_free_values() {
    let emb = embedding(300, 2);
    let requests = chaos_requests();
    let ivf_cfg = |cold: DeviceKind| {
        config(4)
            .cold(Placement::node(0, cold))
            .index(IndexMode::Ivf {
                nlist: 0,
                nprobe: 0,
            })
            .ivf_hot_bytes(0)
    };

    for (name, spec, cold) in chaos_plans(plan_seed()) {
        // Fault-free reference server with the identical IVF configuration.
        let mut reference = EmbedServer::new(&system(), &emb, ivf_cfg(cold)).unwrap();
        let sys = install_plan(&system(), spec);
        let mut srv = EmbedServer::new(&sys, &emb, ivf_cfg(cold)).unwrap();
        assert_eq!(
            srv.ivf().unwrap().hot_list_count(),
            0,
            "plan {name}: a zero hot budget must leave every list cold"
        );

        for round in 0..4 {
            let want = reference.serve_batch(&requests).responses;
            let got = srv.serve_batch(&requests).responses;
            assert_eq!(got, want, "plan {name} round {round}");
        }

        let st = srv.stats();
        assert!(st.ivf_queries > 0, "plan {name}: top-k must route via IVF");
        assert!(st.ivf_cold_bytes > 0, "plan {name}: probes must hit cold");
        assert_eq!(
            st.faults_injected,
            st.faults_retried + st.hedges_won + st.degraded,
            "plan {name}"
        );
        match name {
            "transient-pm" => {
                assert!(st.faults_injected > 0, "plan {name} must fire");
                assert_eq!(st.hedges_won, 0, "plan {name}");
            }
            "ssd-timeout" => {
                assert!(st.faults_injected > 0, "plan {name} must fire");
                assert_eq!(st.faults_retried, 0, "plan {name}");
                assert_eq!(st.degraded, 0, "plan {name}");
                assert_eq!(st.hedges_won, st.faults_injected, "plan {name}");
            }
            "pm-spike" | "socket-degrade" => {
                assert_eq!(st.faults_injected, 0, "plan {name} injects no failures");
            }
            _ => {}
        }
    }
}

/// Latency-only plans (spike, degrade) cost simulated time without
/// injecting a single failure: same values, same traffic, more nanoseconds.
#[test]
fn latency_plans_slow_the_clock_without_failures() {
    let run_with = |spec: Option<FaultPlanSpec>| {
        let emb = embedding(400, 3);
        let sys = match spec {
            Some(spec) => install_plan(&system(), spec),
            None => system(),
        };
        let mut srv = EmbedServer::new(&sys, &emb, config(4)).unwrap();
        let mut load =
            RequestStream::new(WorkloadConfig::lookups(400, Popularity::Zipf { s: 1.0 }, 7));
        let report = srv.run(&mut load, 1_000);
        (report.total_sim, report.stats)
    };

    let (base, base_st) = run_with(None);
    let seed = plan_seed();
    for (name, spec) in [
        (
            "spike",
            FaultPlanSpec::new(seed).with_spike(DeviceKind::Pm, 4.0, 0, u64::MAX),
        ),
        ("degrade", FaultPlanSpec::new(seed).with_degrade(0, 2.0, 0)),
    ] {
        let (slow, st) = run_with(Some(spec));
        assert!(slow > base, "{name}: {slow} must exceed fault-free {base}");
        assert_eq!(st.faults_injected, 0, "{name} injects no failures");
        // The byte ledger is untouched: latency plans charge time, not
        // traffic.
        assert_eq!(st.cold_read_bytes, base_st.cold_read_bytes, "{name}");
        assert_eq!(st.dram_write_bytes, base_st.dram_write_bytes, "{name}");
        assert_eq!(st.hits, base_st.hits, "{name}");
    }
}

/// A retry budget of zero means no retries ever: every transient fault goes
/// straight to the degraded replica path, and the identity still balances.
#[test]
fn retry_budget_bounds_attempts() {
    let emb = embedding(300, 4);
    let sys = install_plan(
        &system(),
        FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.5, 3_000),
    );
    let cfg = config(2).max_retries(0);
    let mut srv = EmbedServer::new(&sys, &emb, cfg).unwrap();
    let mut load = RequestStream::new(WorkloadConfig::lookups(
        300,
        Popularity::Zipf { s: 1.0 },
        13,
    ));
    srv.run(&mut load, 1_000);
    let st = srv.stats();
    assert!(st.faults_injected > 0, "50% transients must fire");
    assert_eq!(st.faults_retried, 0, "budget of zero forbids retries");
    assert_eq!(st.faults_injected, st.hedges_won + st.degraded);

    // With the default budget the same plan mostly resolves via retries,
    // and retries can never exceed the injected count (each failure is
    // counted once, resolved once).
    let sys = install_plan(
        &system(),
        FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.5, 3_000),
    );
    let mut srv = EmbedServer::new(&sys, &emb, config(2)).unwrap();
    let mut load = RequestStream::new(WorkloadConfig::lookups(
        300,
        Popularity::Zipf { s: 1.0 },
        13,
    ));
    srv.run(&mut load, 1_000);
    let st = srv.stats();
    assert!(st.faults_injected > 0);
    assert!(st.faults_retried <= st.faults_injected);
    assert!(st.faults_retried > 0, "default budget retries transients");
    assert_eq!(
        st.faults_injected,
        st.faults_retried + st.hedges_won + st.degraded
    );
}

/// The full fault schedule is a pure function of (plan seed, workload seed):
/// same pair ⇒ byte-identical metrics JSONL; a different plan seed moves
/// the schedule and the exported bytes.
#[test]
fn fault_schedule_and_metrics_are_deterministic_per_seed() {
    let run_once = |fault_seed: u64| -> String {
        let emb = embedding(300, 6);
        let sys = install_plan(
            &system(),
            FaultPlanSpec::new(fault_seed)
                .with_transient(DeviceKind::Pm, 0.3, 3_000)
                .with_degrade(0, 1.5, 0),
        );
        let rec = Recorder::enabled();
        let mut srv = EmbedServer::new(&sys, &emb, config(4))
            .unwrap()
            .with_recorder(&rec, Track::MAIN);
        let mut load = RequestStream::new(
            WorkloadConfig::lookups(300, Popularity::Zipf { s: 1.0 }, 42).with_topk(0.02, 5),
        );
        srv.run(&mut load, 1_500);
        rec.metrics_jsonl()
    };
    let seed = plan_seed();
    let a = run_once(seed);
    let b = run_once(seed);
    assert_eq!(a, b, "same plan seed must export identical metric bytes");
    let c = run_once(seed ^ 0x9e37_79b9_7f4a_7c15);
    assert_ne!(a, c, "a different plan seed must move the fault schedule");

    // The exported counters obey the resolution identity too.
    let rows = omega_obs::export::parse_metrics_jsonl(&a).unwrap();
    let counter = |name: &str| {
        rows.iter()
            .find(|(k, n, _)| k == "counter" && n == name)
            .map(|(_, _, v)| *v as u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert!(counter("fault.injected") > 0, "30% transients must fire");
    assert_eq!(
        counter("fault.injected"),
        counter("fault.retried") + counter("fault.hedge.won") + counter("serve.degraded"),
    );
}

/// A zero-rate plan is observationally free: installing it must leave the
/// metrics export byte-identical to running with no plan at all.
#[test]
fn zero_rate_plan_is_observationally_free() {
    let run_once = |spec: Option<FaultPlanSpec>| -> String {
        let emb = embedding(300, 6);
        let sys = match spec {
            Some(spec) => install_plan(&system(), spec),
            None => system(),
        };
        let rec = Recorder::enabled();
        let mut srv = EmbedServer::new(&sys, &emb, config(4))
            .unwrap()
            .with_recorder(&rec, Track::MAIN);
        let mut load = RequestStream::new(
            WorkloadConfig::lookups(300, Popularity::Zipf { s: 1.0 }, 42).with_topk(0.02, 5),
        );
        srv.run(&mut load, 1_500);
        rec.metrics_jsonl()
    };
    let plain = run_once(None);
    let zero = run_once(Some(FaultPlanSpec::new(plan_seed())));
    assert_eq!(plain, zero, "a zero-rate plan must be a perfect no-op");
}

/// The dual-clock observability invariants survive chaos: root spans still
/// cover the run, the track cursor still lands exactly on the total, and
/// the robustness spans show up where the plan makes them fire.
#[test]
fn observability_invariants_hold_under_faults() {
    let emb = embedding(500, 3);
    let sys = install_plan(
        &system(),
        FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.5, 3_000),
    );
    let rec = Recorder::enabled();
    let track = Track::new(1, 0);
    let mut srv = EmbedServer::new(&sys, &emb, config(8))
        .unwrap()
        .with_recorder(&rec, track);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(500, Popularity::Zipf { s: 1.0 }, 11).with_topk(0.02, 5),
    );
    let report = srv.run(&mut load, 1_000);
    assert!(report.stats.faults_injected > 0, "50% transients must fire");

    let spans = rec.spans();
    let root_ns: u64 = spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.sim_dur_ns)
        .sum();
    let total = report.total_sim.as_nanos();
    assert!(
        root_ns as f64 >= 0.95 * total as f64,
        "root spans cover {root_ns} of {total} simulated ns under faults"
    );
    assert_eq!(rec.cursor(track).as_nanos(), total);
    // Retried fetches leave their backoff spans on the timeline.
    assert!(
        spans.iter().any(|s| s.name == "serve.retry"),
        "retries must be visible as spans"
    );
}

/// SpMM under a fault plan: a failed worker chunk is re-run (degraded
/// mode), the numeric result stays bit-identical to the fault-free run,
/// and the degraded count is deterministic in the plan seed.
#[test]
fn spmm_degraded_mode_recomputes_exact_result() {
    use omega_graph::{Csdb, RmatConfig};
    use omega_spmm::{SpmmConfig, SpmmEngine};

    let csr = RmatConfig::social(512, 4_000, 3).generate_csr().unwrap();
    let a = Csdb::from_csr(&csr).unwrap();
    let b = omega_linalg::gaussian_matrix(512, DIM, 1);

    let clean = SpmmEngine::new(system(), SpmmConfig::omega(4))
        .unwrap()
        .spmm(&a, &b)
        .unwrap();
    assert_eq!(clean.degraded_chunks, 0, "no plan, no degradation");

    let run_faulted = || {
        let sys = install_plan(
            &system(),
            FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.9, 3_000),
        );
        SpmmEngine::new(sys, SpmmConfig::omega(4))
            .unwrap()
            .spmm(&a, &b)
            .unwrap()
    };
    let faulted = run_faulted();
    assert!(
        faulted.degraded_chunks > 0,
        "90% transients must fail chunks"
    );
    assert_eq!(
        faulted.result.data(),
        clean.result.data(),
        "degraded re-runs must not change a single value"
    );
    // A degraded chunk pays its work twice: the faulted run is slower.
    assert!(faulted.makespan > clean.makespan);

    let again = run_faulted();
    assert_eq!(faulted.degraded_chunks, again.degraded_chunks);
    assert_eq!(faulted.makespan, again.makespan);
}
