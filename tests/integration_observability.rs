//! Cross-crate integration of the observability layer: run a small embed
//! with a live recorder, export the Chrome trace and metrics JSONL, and
//! validate both against the run's own report.

use omega::obs::{export, json, Recorder};
use omega::{Omega, OmegaConfig};
use omega_graph::RmatConfig;
use serde::Value;

/// One parsed "X" (complete) trace event.
struct Event {
    name: String,
    pid: u64,
    tid: u64,
    start_ns: f64,
    dur_ns: f64,
    depth: u64,
}

fn run_embed() -> (omega::OmegaRun, Recorder) {
    let graph = RmatConfig::social(400, 3_000, 21).generate_csr().unwrap();
    let rec = Recorder::enabled();
    let omega = Omega::new(OmegaConfig::default().with_threads(4).with_dim(8))
        .unwrap()
        .with_recorder(rec.clone());
    (omega.embed(&graph).unwrap(), rec)
}

fn parse_events(trace: &str) -> Vec<Event> {
    let doc = json::parse(trace).unwrap();
    let events = doc.get("traceEvents").unwrap().as_seq().unwrap();
    events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            let args = e.get("args").unwrap();
            Event {
                name: e.get("name").and_then(Value::as_str).unwrap().to_string(),
                pid: e.get("pid").and_then(Value::as_u64).unwrap(),
                tid: e.get("tid").and_then(Value::as_u64).unwrap(),
                // ts/dur are microseconds; args carry exact nanoseconds.
                start_ns: args.get("sim_start_ns").and_then(Value::as_f64).unwrap(),
                dur_ns: args.get("sim_dur_ns").and_then(Value::as_f64).unwrap(),
                depth: args.get("depth").and_then(Value::as_u64).unwrap(),
            }
        })
        .collect()
}

#[test]
fn chrome_trace_spans_nest_and_cover_total_time() {
    let (run, rec) = run_embed();
    let events = parse_events(&rec.chrome_trace_json());
    assert!(!events.is_empty());

    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing span {name}"))
    };
    let root = find("prone.embed");

    // Root span duration equals the run's end-to-end simulated time (the
    // phases close with exact durations, so this holds to within 1%).
    let total_ns = run.total_time().as_nanos() as f64;
    assert!(
        (root.dur_ns - total_ns).abs() <= total_ns * 0.01,
        "root span {} ns vs total_time {} ns",
        root.dur_ns,
        total_ns
    );

    // The three phases nest inside the root, abut, and sum to it.
    let contains = |outer: &Event, inner: &Event| {
        inner.start_ns >= outer.start_ns
            && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
    };
    let read = find("prone.read");
    let fact = find("prone.factorize");
    let prop = find("prone.propagate");
    for phase in [read, fact, prop] {
        assert!(
            contains(root, phase),
            "{} escapes the root span",
            phase.name
        );
        assert!(phase.depth > root.depth);
        assert_eq!(phase.pid, root.pid);
        assert_eq!(phase.tid, root.tid);
    }
    assert_eq!(read.start_ns + read.dur_ns, fact.start_ns);
    assert_eq!(fact.start_ns + fact.dur_ns, prop.start_ns);
    let phase_sum = read.dur_ns + fact.dur_ns + prop.dur_ns;
    assert!((phase_sum - root.dur_ns).abs() <= root.dur_ns * 0.01);

    // Engine spans nest inside the phases, deeper than them.
    let runs: Vec<&Event> = events.iter().filter(|e| e.name == "spmm.run").collect();
    assert_eq!(runs.len(), run.report.spmm_count);
    for r in &runs {
        assert!(r.depth > fact.depth);
        assert!(contains(root, r));
        // Every nested span fits inside exactly one phase.
        assert!(
            contains(read, r) || contains(fact, r) || contains(prop, r),
            "spmm.run at {} ns straddles a phase boundary",
            r.start_ns
        );
    }

    // Pipeline intervals live on per-socket tracks (pid >= 1).
    assert!(events.iter().any(|e| e.name == "asl.batch" && e.pid >= 1));
}

#[test]
fn metrics_jsonl_matches_access_summary_exactly() {
    let (run, rec) = run_embed();
    let rows = export::parse_metrics_jsonl(&rec.metrics_jsonl()).unwrap();
    let counter = |name: &str| -> u64 {
        rows.iter()
            .find(|(k, n, _)| k == "counter" && n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .2 as u64
    };
    assert_eq!(counter("mem.total_bytes"), run.traffic.total_bytes);
    assert_eq!(counter("mem.pm_bytes"), run.traffic.pm_bytes);
    assert_eq!(counter("mem.dram_bytes"), run.traffic.dram_bytes);
    assert_eq!(counter("mem.ssd_bytes"), run.traffic.ssd_bytes);
    assert_eq!(counter("mem.remote_bytes"), run.traffic.remote_bytes);
    assert!(run.traffic.pm_bytes > 0, "hetero mode moves PM bytes");

    // SpMM accounting flowed through: runs counted and hit rate in range.
    assert_eq!(counter("spmm.runs"), run.report.spmm_count as u64);
    let hit_rate = rows
        .iter()
        .find(|(k, n, _)| k == "gauge" && n == "wofp.hit_rate");
    if let Some((_, _, v)) = hit_rate {
        assert!((0.0..=1.0).contains(v));
    }
}

#[test]
fn disabled_recorder_changes_nothing_and_exports_nothing() {
    let graph = RmatConfig::social(400, 3_000, 21).generate_csr().unwrap();
    let cfg = OmegaConfig::default().with_threads(4).with_dim(8);
    let plain = Omega::new(cfg.clone()).unwrap().embed(&graph).unwrap();
    let (observed, rec_disabled) = {
        let rec = Recorder::disabled();
        let omega = Omega::new(cfg).unwrap().with_recorder(rec.clone());
        (omega.embed(&graph).unwrap(), rec)
    };
    // Identical numerics and identical simulated times.
    assert_eq!(plain.embedding, observed.embedding);
    assert_eq!(plain.total_time(), observed.total_time());
    assert!(rec_disabled.metrics_jsonl().is_empty());
    assert!(rec_disabled.spans().is_empty());
}
