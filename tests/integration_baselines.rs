//! Integration tests for the comparator systems: the paper's orderings must
//! hold on the dataset twins.

use omega::{Omega, OmegaConfig, SystemVariant};
use omega_baselines::dist::{DistConfig, DistDglLike, DistGerLike};
use omega_baselines::prone_like::ProneBaseline;
use omega_baselines::spmm_systems::{omega_spmm_time, FusedMm, SemSpmm};
use omega_baselines::ssd_systems::{GinexLike, MariusLike, SsdSystemConfig};
use omega_graph::{Csdb, Dataset};
use omega_hetmem::{SimDuration, Topology};
use omega_linalg::gaussian_matrix;

const SCALE: u64 = 4_000;
const THREADS: usize = 16;
const DIM: usize = 32;

fn topo() -> Topology {
    Topology::paper_machine_scaled((24 << 20) / 4)
}

fn omega_time(d: Dataset) -> SimDuration {
    let g = d.load_scaled(SCALE).unwrap();
    Omega::new(
        OmegaConfig::default()
            .with_topology(topo())
            .with_threads(THREADS)
            .with_dim(DIM),
    )
    .unwrap()
    .embed(&g)
    .unwrap()
    .total_time()
}

#[test]
fn fig12_ordering_on_pk_twin() {
    let d = Dataset::Pk;
    let g = d.load_scaled(SCALE).unwrap();
    let omega = omega_time(d);
    let prone_dram = ProneBaseline::dram(topo(), THREADS, DIM)
        .run(&g)
        .time()
        .unwrap();
    let prone_hm = ProneBaseline::hm(topo(), THREADS, DIM)
        .run(&g)
        .time()
        .unwrap();
    let cfg = SsdSystemConfig {
        threads: THREADS,
        dim: DIM,
        ..SsdSystemConfig::default()
    };
    let ginex = GinexLike::new(topo(), cfg).run(&g).time().unwrap();
    let marius = MariusLike::new(topo(), cfg).run(&g).time().unwrap();

    // The paper's Fig. 12 ordering: OMeGa beats every competitor.
    for (name, t) in [
        ("ProNE-DRAM", prone_dram),
        ("ProNE-HM", prone_hm),
        ("Ginex", ginex),
        ("MariusGNN", marius),
    ] {
        assert!(
            t > omega,
            "{name} ({t}) should be slower than OMeGa ({omega})"
        );
    }
    // And ProNE-HM is slower than ProNE-DRAM (the PM sparse streams).
    assert!(prone_hm > prone_dram);
}

#[test]
fn dram_only_systems_oom_on_billion_scale_twins() {
    for d in [Dataset::Tw2010, Dataset::Fr] {
        let g = d.load_scaled(SCALE).unwrap();
        let cfg = OmegaConfig::default()
            .with_topology(topo())
            .with_threads(THREADS)
            .with_dim(64)
            .with_variant(SystemVariant::OmegaDram);
        let err = Omega::new(cfg).unwrap().embed(&g).unwrap_err();
        assert!(err.is_oom(), "{} should OOM on DRAM", d.label());
        // FusedMM (in-memory) fails on TW-2010 as the paper reports.
        let fused = FusedMm::new(topo(), THREADS).run_spmm(&g, 64);
        assert!(fused.is_oom(), "FusedMM should OOM on {}", d.label());
        // OMeGa itself completes.
        let cfg = OmegaConfig::default()
            .with_topology(topo())
            .with_threads(THREADS)
            .with_dim(64);
        assert!(Omega::new(cfg).unwrap().embed(&g).is_ok());
    }
}

#[test]
fn fig18a_distributed_ordering() {
    let g = Dataset::Lj.load_scaled(SCALE).unwrap();
    let omega = omega_time(Dataset::Lj);
    let cfg = DistConfig::paper_cluster(DIM);
    let dgl = DistDglLike::new(cfg).run(&g).time().unwrap();
    let ger = DistGerLike::new(cfg).run(&g).time().unwrap();
    assert!(dgl > omega, "DistDGL should trail OMeGa");
    assert!(ger < dgl, "DistGER should beat DistDGL");
    // DistGER is competitive: within an order of magnitude of OMeGa.
    assert!(ger.ratio(omega) < 10.0);
}

#[test]
fn fig18b_spmm_ordering() {
    let g = Dataset::Pk.load_scaled(SCALE).unwrap();
    let csdb = Csdb::from_csr(&g).unwrap();
    let b = gaussian_matrix(g.rows() as usize, DIM, 1);
    let omega = omega_spmm_time(topo(), THREADS, &csdb, &b).time().unwrap();
    let sem = SemSpmm::new(topo(), THREADS)
        .run_spmm(&g, DIM)
        .time()
        .unwrap();
    let fused = FusedMm::new(topo(), THREADS)
        .run_spmm(&g, DIM)
        .time()
        .unwrap();
    assert!(
        sem.ratio(omega) > 4.0,
        "SEM-SpMM should trail OMeGa clearly ({})",
        sem.ratio(omega)
    );
    assert!(
        fused.ratio(omega) > 1.2,
        "FusedMM should trail OMeGa ({})",
        fused.ratio(omega)
    );
    assert!(sem > fused, "SEM-SpMM (SSD) slower than FusedMM (DRAM)");
}

#[test]
fn omega_pm_is_orders_of_magnitude_slower() {
    let d = Dataset::Pk;
    let g = d.load_scaled(SCALE).unwrap();
    let omega = omega_time(d);
    let pm = Omega::new(
        OmegaConfig::default()
            .with_topology(topo())
            .with_threads(THREADS)
            .with_dim(DIM)
            .with_variant(SystemVariant::OmegaPm),
    )
    .unwrap()
    .embed(&g)
    .unwrap()
    .total_time();
    assert!(
        pm.ratio(omega) > 10.0,
        "OMeGa-PM should be >=10x slower, got {:.1}x",
        pm.ratio(omega)
    );
}
