//! Determinism under parallelism: thread count is a wall-clock knob, never
//! a results knob. The serving engine's metrics export, responses and
//! latencies, the SpMM kernel's numeric output, and the whole training
//! path (ProNE embed with parallel dense kernels, walk-corpus generation)
//! must be **byte-identical** at `--threads 1`, `2` and `8`, with and
//! without an installed fault plan, and across repeated runs at the same
//! seed.

use omega::faults::{install_plan, FaultPlanSpec};
use omega::hetmem::{DeviceKind, MemSystem, Placement, Topology};
use omega::obs::{Recorder, Track};
use omega::serve::{EmbedServer, Popularity, RequestStream, Response, ServeConfig, WorkloadConfig};
use omega_embed::prone::{Prone, ProneConfig};
use omega_graph::{Csdb, RmatConfig};
use omega_spmm::{SpmmConfig, SpmmEngine};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Fault-plan seed under test: the CI chaos matrix sweeps
/// `OMEGA_FAULT_SEED`; locally the default applies. Determinism across
/// thread counts must hold for *any* schedule — the seed only moves which
/// accesses misbehave.
fn plan_seed() -> u64 {
    std::env::var("OMEGA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1729)
}

fn serve_config(threads: usize) -> ServeConfig {
    ServeConfig::new(8 * 32 * 8 * 4)
        .rows_per_shard(32)
        .cold(Placement::node(0, DeviceKind::Pm))
        .threads(threads)
}

/// One fixed-seed serving run at the given thread count; returns the full
/// metrics JSONL export (counters, gauges, latency histogram — every
/// simulated observable).
fn serve_run(threads: usize, plan: Option<FaultPlanSpec>) -> String {
    let emb = omega::Embedding::from_matrix(&omega::linalg::gaussian_matrix(1_500, 8, 42));
    let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
    let sys = match plan {
        Some(spec) => install_plan(&sys, spec),
        None => sys,
    };
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, serve_config(threads))
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(1_500, Popularity::Zipf { s: 1.0 }, 7).with_topk(0.03, 6),
    );
    srv.run(&mut load, 1_500);
    rec.metrics_jsonl()
}

/// Fault-free serving: the metrics export is byte-identical at every
/// thread count and across repeated runs.
#[test]
fn serve_metrics_identical_across_thread_counts() {
    let baseline = serve_run(1, None);
    assert!(!baseline.is_empty());
    for threads in THREAD_COUNTS {
        let got = serve_run(threads, None);
        assert_eq!(
            got, baseline,
            "metrics drifted between threads=1 and threads={threads}"
        );
    }
    assert_eq!(serve_run(8, None), baseline, "rerun at threads=8 drifted");
}

/// Under an installed fault plan: every injected verdict draws from a
/// stream keyed by *what* is processed (shard id, request index), so the
/// whole fault schedule — retries, hedges, degradations and their
/// simulated cost — replays byte-identically at every thread count.
#[test]
fn faulted_serve_metrics_identical_across_thread_counts() {
    let spec = || FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.05, 3_000);
    let baseline = serve_run(1, Some(spec()));
    // The plan must actually fire, or this test proves nothing.
    assert!(
        baseline.contains(r#""fault.injected""#),
        "fault counters missing from export"
    );
    for threads in THREAD_COUNTS {
        let got = serve_run(threads, Some(spec()));
        assert_eq!(
            got, baseline,
            "faulted metrics drifted between threads=1 and threads={threads}"
        );
    }
}

/// Responses and per-request simulated latencies — not just aggregate
/// metrics — are identical at every thread count, mixed Get/TopK batch
/// included.
#[test]
fn serve_responses_identical_across_thread_counts() {
    let emb = omega::Embedding::from_matrix(&omega::linalg::gaussian_matrix(800, 8, 9));
    let run = |threads: usize| {
        let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
        let mut srv = EmbedServer::new(&sys, &emb, serve_config(threads)).unwrap();
        let mut load = RequestStream::new(
            WorkloadConfig::lookups(800, Popularity::Zipf { s: 1.0 }, 13).with_topk(0.1, 7),
        );
        let requests = load.take_requests(96);
        srv.serve_batch(&requests)
    };
    let baseline = run(1);
    for threads in THREAD_COUNTS {
        let got = run(threads);
        assert_eq!(
            got.sim_latency_ns, baseline.sim_latency_ns,
            "latencies drifted at threads={threads}"
        );
        assert_eq!(got.responses.len(), baseline.responses.len());
        for (i, (a, b)) in baseline.responses.iter().zip(&got.responses).enumerate() {
            match (a, b) {
                (Response::Vector(x), Response::Vector(y)) => {
                    assert_eq!(x, y, "request {i} at threads={threads}")
                }
                (Response::Neighbors(x), Response::Neighbors(y)) => {
                    assert_eq!(x, y, "request {i} at threads={threads}")
                }
                _ => panic!("response kind flipped at request {i}"),
            }
        }
    }
}

/// One fixed-seed training run with `wall_threads` workers on the SpMM
/// workload pool and the dense GEMM/QR/SVD kernels; returns the embedding
/// (row-major) and the full metrics JSONL export.
fn prone_run(wall_threads: usize, plan: Option<FaultPlanSpec>) -> (Vec<f32>, String) {
    let csr = RmatConfig::social(600, 5_000, 17).generate_csr().unwrap();
    let sys = MemSystem::new(Topology::paper_machine_scaled(16 << 20));
    let sys = match plan {
        Some(spec) => install_plan(&sys, spec),
        None => sys,
    };
    let rec = Recorder::enabled();
    let engine = SpmmEngine::new(sys, SpmmConfig::omega(4))
        .unwrap()
        .with_recorder(rec.clone())
        .with_wall_threads(wall_threads);
    let prone = Prone::new(
        engine,
        ProneConfig {
            dim: 16,
            oversample: 8,
            threads: wall_threads,
            ..ProneConfig::default()
        },
    );
    let (emb, _) = prone.embed(&csr).unwrap();
    (emb.data().to_vec(), rec.metrics_jsonl())
}

/// Training metrics and embeddings are byte/bit-identical at every
/// wall-thread count: wall workers partition only output panels, Chebyshev
/// term chunks and workload indices, never a reduction.
#[test]
fn prone_training_identical_across_wall_thread_counts() {
    let (base_emb, base_metrics) = prone_run(1, None);
    assert!(!base_metrics.is_empty());
    for threads in THREAD_COUNTS {
        let (emb, metrics) = prone_run(threads, None);
        assert_eq!(
            metrics, base_metrics,
            "training metrics drifted at wall_threads={threads}"
        );
        assert_eq!(emb.len(), base_emb.len());
        for (i, (a, b)) in base_emb.iter().zip(&emb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "embedding entry {i} drifted at wall_threads={threads}: {a} vs {b}"
            );
        }
    }
    let (emb, metrics) = prone_run(8, None);
    assert_eq!(metrics, base_metrics, "rerun at wall_threads=8 drifted");
    assert!(emb
        .iter()
        .zip(&base_emb)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

/// Under an installed fault plan the whole training fault schedule —
/// injected verdicts, retries, their simulated cost — is keyed by
/// (column batch, workload index) and so replays byte-identically at every
/// wall-thread count.
#[test]
fn faulted_prone_training_identical_across_wall_thread_counts() {
    // Higher rate than the serving test: training makes far fewer fault
    // draws (one per column batch × workload), so 5% can miss entirely
    // under some seeds.
    let spec = || FaultPlanSpec::new(plan_seed()).with_transient(DeviceKind::Pm, 0.25, 3_000);
    let (base_emb, base_metrics) = prone_run(1, Some(spec()));
    assert!(
        base_metrics.contains(r#""fault.injected""#),
        "fault counters missing from training export"
    );
    for threads in THREAD_COUNTS {
        let (emb, metrics) = prone_run(threads, Some(spec()));
        assert_eq!(
            metrics, base_metrics,
            "faulted training metrics drifted at wall_threads={threads}"
        );
        assert!(emb
            .iter()
            .zip(&base_emb)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

/// Walk-corpus generation on the shared pool is identical to the serial
/// corpus at every worker count, for both fixed-length and
/// information-adaptive walks.
#[test]
fn walk_corpora_identical_across_worker_counts() {
    use omega_walk::{InfoWalkConfig, InfoWalker, WalkConfig, Walker};
    let csr = RmatConfig::social(300, 2_500, 23).generate_csr().unwrap();
    let walker = Walker::new(&csr, WalkConfig::deepwalk(3, 10, 7));
    let serial = walker.generate_all();
    let info = InfoWalker::new(&csr, InfoWalkConfig::default());
    let info_serial = info.generate_all();
    for threads in THREAD_COUNTS {
        assert_eq!(
            walker.generate_all_parallel(threads),
            serial,
            "walk corpus drifted at workers={threads}"
        );
        assert_eq!(
            info.generate_all_parallel(threads),
            info_serial,
            "info-walk corpus drifted at workers={threads}"
        );
    }
}

/// SpMM numeric output is bit-identical at every worker count: threads
/// change row partitioning only, and every row's reduction runs over the
/// full row in a fixed order through the shared sparse kernel.
#[test]
fn spmm_result_bit_identical_across_thread_counts() {
    let csr = RmatConfig::social(512, 6_000, 21).generate_csr().unwrap();
    let csdb = Csdb::from_csr(&csr).unwrap();
    let dense = omega::linalg::gaussian_matrix(512, 16, 5);
    let run = |threads: usize| {
        let sys = MemSystem::new(Topology::paper_machine_scaled(1 << 24));
        let engine = SpmmEngine::new(sys, SpmmConfig::omega(threads)).unwrap();
        engine.spmm(&csdb, &dense).unwrap().result.to_row_major()
    };
    let baseline = run(1);
    for threads in THREAD_COUNTS {
        let got = run(threads);
        assert_eq!(got.len(), baseline.len());
        for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "entry {i} drifted at threads={threads}: {a} vs {b}"
            );
        }
    }
}
