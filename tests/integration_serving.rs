//! End-to-end tests of the tiered embedding-serving subsystem
//! (`omega-serve`): query-result correctness across tiers, batching
//! semantics, observability coverage, byte accounting, and determinism.

use omega_embed::{Embedding, Metric};
use omega_hetmem::{DeviceKind, MemSystem, Placement, Topology};
use omega_obs::{Recorder, Track};
use omega_serve::{
    EmbedServer, IndexMode, Popularity, Request, RequestKind, RequestStream, Response, ServeConfig,
    WorkloadConfig,
};

const DIM: usize = 8;

fn embedding(nodes: u32, seed: u64) -> Embedding {
    Embedding::from_matrix(&omega_linalg::gaussian_matrix(nodes as usize, DIM, seed))
}

fn system() -> MemSystem {
    MemSystem::new(Topology::paper_machine_scaled(8 << 20))
}

fn config(cache_shards: u64) -> ServeConfig {
    ServeConfig::new(cache_shards * 16 * DIM as u64 * 4).rows_per_shard(16)
}

/// Brute-force top-k must be bit-identical whether the table is served out
/// of the DRAM cache or streamed from the cold tier — and both must match
/// the reference `Embedding::top_k`.
#[test]
fn top_k_identical_between_cached_and_cold_paths() {
    let emb = embedding(200, 1);
    let sys = system();

    // Warm server: cache holds the whole table; touch every shard first.
    let mut warm = EmbedServer::new(&sys, &emb, config(64)).unwrap();
    let all: Vec<u32> = (0..200).collect();
    warm.get_vectors(&all);
    assert_eq!(
        warm.stats().fetches as usize,
        warm.store().num_shards(),
        "warm-up must fetch every shard"
    );

    // Cold server: zero-byte cache, every scan streams from PM.
    let mut cold = EmbedServer::new(&sys, &emb, config(0)).unwrap();

    for probe in [0u32, 7, 123, 199] {
        let query = emb.vector(probe).to_vec();
        let hot_result = warm.top_k(&query, 10);
        let cold_result = cold.top_k(&query, 10);
        assert_eq!(hot_result, cold_result, "probe {probe}");
        assert_eq!(
            hot_result,
            emb.top_k(&query, 10, Metric::Dot),
            "probe {probe}"
        );
    }

    // The warm scans were DRAM traffic, the cold scans cold-tier traffic.
    assert_eq!(warm.stats().cold_read_bytes, warm.store().total_bytes());
    assert!(cold.stats().dram_read_bytes == 0);
    assert_eq!(
        cold.stats().cold_read_bytes,
        4 * warm.store().total_bytes(),
        "four cold scans of the full table"
    );
}

/// Batching coalesces shard fetches but must answer strictly in arrival
/// order, duplicates and all.
#[test]
fn batching_never_reorders_responses() {
    let emb = embedding(300, 2);
    let sys = system();
    let mut srv = EmbedServer::new(&sys, &emb, config(4)).unwrap();

    // Shuffled, duplicated, shard-crossing request order with a top-k in
    // the middle.
    let mut requests = Request::gets(&[299, 0, 150, 0, 17, 299, 63, 202]);
    requests.insert(
        4,
        Request {
            node: 150,
            kind: RequestKind::top_k(5),
        },
    );
    let batch = srv.serve_batch(&requests);
    assert_eq!(batch.responses.len(), requests.len());
    for (req, resp) in requests.iter().zip(&batch.responses) {
        match (req.kind, resp) {
            (RequestKind::Get, Response::Vector(v)) => {
                assert_eq!(v.as_slice(), emb.vector(req.node), "node {}", req.node)
            }
            (RequestKind::TopK { k, .. }, Response::Neighbors(n)) => {
                assert_eq!(n.len(), k);
                assert_eq!(n, &emb.top_k(emb.vector(req.node), k, Metric::Dot));
            }
            (kind, resp) => panic!("response kind mismatch: {kind:?} vs {resp:?}"),
        }
    }
    // Distinct shards among the requests: 299→18, 0→0, 150→9, 17→1, 63→3,
    // 202→12 — six fetches for nine requests.
    assert_eq!(srv.stats().fetches, 6);
    // Latencies are monotone within a batch (fetch phase + in-order serves).
    for pair in batch.sim_latency_ns.windows(2) {
        assert!(pair[0] <= pair[1]);
    }
}

/// Every simulated nanosecond of a run must be covered by root spans — the
/// acceptance bar is ≥95%, the implementation accounts for 100%.
#[test]
fn span_totals_cover_simulated_time() {
    let emb = embedding(500, 3);
    let sys = system();
    let rec = Recorder::enabled();
    let track = Track::new(1, 0);
    let mut srv = EmbedServer::new(&sys, &emb, config(8))
        .unwrap()
        .with_recorder(&rec, track);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(500, Popularity::Zipf { s: 1.0 }, 11).with_topk(0.02, 5),
    );
    let report = srv.run(&mut load, 1_000);
    assert!(report.total_sim.as_nanos() > 0);

    let spans = rec.spans();
    let root_ns: u64 = spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.sim_dur_ns)
        .sum();
    let total = report.total_sim.as_nanos();
    assert!(
        root_ns as f64 >= 0.95 * total as f64,
        "root spans cover {root_ns} of {total} simulated ns"
    );
    // The recorder's track cursor and the server's own clock agree.
    assert_eq!(rec.cursor(track).as_nanos(), total);
    // All four span kinds show up.
    for name in ["serve.batch", "serve.fetch", "serve.lookup", "serve.topk"] {
        assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
    }
    // Leaf spans nest under batch parents.
    assert!(spans
        .iter()
        .filter(|s| s.name != "serve.batch")
        .all(|s| s.depth == 1));
}

/// The `serve.*` metric counters, the server's own byte ledger, and the
/// hetmem `AccessSummary` must agree byte-for-byte.
#[test]
fn counters_match_access_summary_bytes() {
    let emb = embedding(400, 4);
    let sys = system();
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, config(6))
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(400, Popularity::Zipf { s: 0.8 }, 21).with_topk(0.05, 8),
    );
    let report = srv.run(&mut load, 2_000);
    let st = &report.stats;
    let traffic = &report.traffic;

    // Ledger vs. hetmem accounting: the cold tier is PM, the hot tier DRAM.
    assert_eq!(traffic.pm_bytes, st.cold_read_bytes);
    assert_eq!(traffic.ssd_bytes, 0);
    assert_eq!(traffic.dram_bytes, st.dram_read_bytes + st.dram_write_bytes);
    assert_eq!(traffic.read_bytes, st.cold_read_bytes + st.dram_read_bytes);
    assert_eq!(traffic.write_bytes, st.dram_write_bytes);
    assert_eq!(
        traffic.total_bytes,
        st.cold_read_bytes + st.dram_read_bytes + st.dram_write_bytes
    );

    // Fetch invariant: whatever streams out of the cold tier on the serving
    // path is staged into DRAM (top-k scans read cold without staging).
    assert!(st.dram_write_bytes <= st.cold_read_bytes);

    // Published counters mirror the ledger exactly.
    let rows = omega_obs::export::parse_metrics_jsonl(&rec.metrics_jsonl()).unwrap();
    let counter = |name: &str| {
        rows.iter()
            .find(|(k, n, _)| k == "counter" && n == name)
            .map(|(_, _, v)| *v as u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("serve.requests"), st.requests);
    assert_eq!(counter("serve.cache.hit"), st.hits);
    assert_eq!(counter("serve.cache.miss"), st.misses);
    assert_eq!(counter("serve.cache.evict"), st.evictions);
    assert_eq!(counter("serve.cache.fetch"), st.fetches);
    assert_eq!(counter("serve.cold.bytes"), st.cold_read_bytes);
    assert_eq!(
        counter("serve.dram.bytes"),
        st.dram_read_bytes + st.dram_write_bytes
    );
    assert_eq!(st.hits + st.misses, st.requests);
}

/// An SSD cold tier routes the same fetch traffic through SSD accounting.
#[test]
fn ssd_cold_tier_accounts_ssd_bytes() {
    let emb = embedding(200, 5);
    let sys = system();
    let cfg = config(2).cold(Placement::node(0, DeviceKind::Ssd));
    let mut srv = EmbedServer::new(&sys, &emb, cfg).unwrap();
    let mut load = RequestStream::new(WorkloadConfig::lookups(200, Popularity::Uniform, 5));
    let report = srv.run(&mut load, 500);
    assert_eq!(report.traffic.ssd_bytes, report.stats.cold_read_bytes);
    assert_eq!(report.traffic.pm_bytes, 0);
    assert!(report.stats.cold_read_bytes > 0);
    // SSD fetches are far more expensive than the PM runs elsewhere in this
    // file: a page-granular device with per-IO latency.
    assert!(report.sim_percentile_ns(0.99) > 10_000);
}

/// Same seed ⇒ byte-identical metrics export; different seed ⇒ different
/// request stream (and almost surely different latency histogram).
#[test]
fn metrics_export_is_deterministic_per_seed() {
    let run_once = |seed: u64| -> String {
        let emb = embedding(300, 6);
        let sys = system();
        let rec = Recorder::enabled();
        let mut srv = EmbedServer::new(&sys, &emb, config(4))
            .unwrap()
            .with_recorder(&rec, Track::MAIN);
        let mut load = RequestStream::new(WorkloadConfig::lookups(
            300,
            Popularity::Zipf { s: 1.0 },
            seed,
        ));
        srv.run(&mut load, 1_500);
        rec.metrics_jsonl()
    };
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a, b, "same seed must export identical metric bytes");
    let c = run_once(43);
    assert_ne!(a, c, "distinct seeds must serve distinct workloads");
}

/// The acceptance skew: at Zipf s=1.0 the head working set stays resident,
/// so hits must outnumber misses.
#[test]
fn zipf_head_hit_rate_beats_miss_rate() {
    let emb = embedding(10_000, 7);
    let sys = system();
    let mut srv = EmbedServer::new(&sys, &emb, config(16)).unwrap();
    let mut load = RequestStream::new(WorkloadConfig::lookups(
        10_000,
        Popularity::Zipf { s: 1.0 },
        9,
    ));
    let report = srv.run(&mut load, 10_000);
    assert!(
        report.stats.hits > report.stats.misses,
        "hit rate {:.3} at s=1.0 with a 16-shard cache",
        report.stats.hit_rate()
    );
    // Uniform traffic over the same table cannot: 16 cached shards of 625.
    let mut srv2 = EmbedServer::new(&sys, &emb, config(16)).unwrap();
    let mut load2 = RequestStream::new(WorkloadConfig::lookups(10_000, Popularity::Uniform, 9));
    let uniform = srv2.run(&mut load2, 10_000);
    assert!(uniform.stats.hit_rate() < report.stats.hit_rate());
}

/// Shard fan-out is annotated with zero-cost `serve.shard.parallel` spans:
/// they name the phase and task count (wall-clock observability for the
/// worker pool) without moving the simulated clock — so the span stream's
/// timing invariants hold at every thread count.
#[test]
fn parallel_spans_annotate_fanout_without_simulated_cost() {
    let emb = embedding(500, 3);
    let sys = system();
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, config(8).threads(4))
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(500, Popularity::Zipf { s: 1.0 }, 11).with_topk(0.02, 5),
    );
    let report = srv.run(&mut load, 1_000);

    let spans = rec.spans();
    let parallel: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "serve.shard.parallel")
        .collect();
    assert!(!parallel.is_empty(), "no serve.shard.parallel spans");
    let arg = |s: &omega_obs::SpanRecord, key: &str| {
        s.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let mut phases = std::collections::BTreeSet::new();
    for s in &parallel {
        assert_eq!(s.sim_dur_ns, 0, "parallel span must not move sim clock");
        assert_eq!(s.depth, 1, "parallel spans nest under serve.batch");
        assert_eq!(arg(s, "threads"), "4");
        assert!(arg(s, "tasks").parse::<usize>().unwrap() >= 1);
        phases.insert(arg(s, "phase"));
    }
    // The mixed Get/TopK workload exercises all three fan-out phases.
    for phase in ["fetch", "lookup", "scan"] {
        assert!(phases.contains(phase), "missing fan-out phase {phase}");
    }
    // And the cursor still accounts for every simulated nanosecond.
    assert_eq!(
        rec.cursor(Track::MAIN).as_nanos(),
        report.total_sim.as_nanos()
    );
}

/// The worker-pool width is a wall-clock knob only: the full report —
/// stats ledger, per-request simulated latencies, traffic summary — is
/// identical at 1 and 8 threads.
#[test]
fn thread_count_never_changes_the_report() {
    let run = |threads: usize| {
        let emb = embedding(600, 17);
        let sys = system();
        let mut srv = EmbedServer::new(&sys, &emb, config(8).threads(threads)).unwrap();
        let mut load = RequestStream::new(
            WorkloadConfig::lookups(600, Popularity::Zipf { s: 1.1 }, 23).with_topk(0.05, 9),
        );
        srv.run(&mut load, 1_200)
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.sim_latency_ns, b.sim_latency_ns);
    assert_eq!(a.total_sim, b.total_sim);
    let ledger = |s: &omega_serve::ServeStats| {
        (
            (s.requests, s.lookups, s.topks, s.batches),
            (
                s.hits,
                s.misses,
                s.fetches,
                s.evictions,
                s.admission_rejects,
            ),
            (s.cold_read_bytes, s.dram_read_bytes, s.dram_write_bytes),
            (
                s.faults_injected,
                s.faults_retried,
                s.hedges_won,
                s.degraded,
            ),
        )
    };
    assert_eq!(ledger(&a.stats), ledger(&b.stats));
    assert_eq!(a.traffic.total_bytes, b.traffic.total_bytes);
    assert_eq!(a.traffic.total_accesses, b.traffic.total_accesses);
}

/// Out-of-range lookups die loudly at the serving boundary (the checked
/// `try_vector` path), not as a slice panic inside a kernel.
#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_request_panics_with_context() {
    let emb = embedding(100, 8);
    let sys = system();
    let mut srv = EmbedServer::new(&sys, &emb, config(2)).unwrap();
    srv.get_vectors(&[100]);
}

/// IVF probe traffic is double-entry bookkept: on a pure top-k stream
/// (no point lookups) every byte the hetmem ledger charged is attributed
/// to exactly one `ivf_*` stat — centroid scans and hot-list probes in
/// DRAM, cold-list probes on the cold tier — and the serve ledger's own
/// tier split agrees.
#[test]
fn ivf_probe_bytes_match_access_summary() {
    let emb = embedding(400, 9);
    let sys = system();
    // A tight hot budget so both hot and cold lists exist.
    let cfg = config(4)
        .index(IndexMode::Ivf {
            nlist: 0,
            nprobe: 0,
        })
        .ivf_hot_bytes(1 << 10);
    let mut srv = EmbedServer::new(&sys, &emb, cfg).unwrap();
    let (nlist, hot) = {
        let ivf = srv.ivf().expect("Ivf mode builds an index");
        (ivf.nlist(), ivf.hot_list_count())
    };
    assert!(
        hot > 0 && hot < nlist,
        "want a hot/cold split, got {hot}/{nlist}"
    );

    for q in [0u32, 13, 200, 399] {
        let query = emb.vector(q).to_vec();
        for nprobe in [1, nlist / 2, nlist] {
            srv.top_k_nprobe(&query, 10, Some(nprobe.max(1)));
        }
    }

    let st = srv.stats().clone();
    let traffic = srv.traffic();
    assert_eq!(st.ivf_queries, 12);
    assert!(st.ivf_probes > st.ivf_queries);
    // Hetmem ledger vs. IVF attribution: nothing else touched memory.
    assert_eq!(traffic.pm_bytes, st.ivf_cold_bytes);
    assert_eq!(
        traffic.dram_bytes,
        st.ivf_centroid_bytes + st.ivf_dram_bytes
    );
    // And the serve ledger's tier split is the same numbers.
    assert_eq!(st.cold_read_bytes, st.ivf_cold_bytes);
    assert_eq!(
        st.dram_read_bytes,
        st.ivf_centroid_bytes + st.ivf_dram_bytes
    );
    assert_eq!(st.dram_write_bytes, 0, "probes stage nothing");
    assert!(st.ivf_centroid_bytes > 0);
    assert!(st.ivf_dram_bytes > 0, "hot lists were probed");
    assert!(st.ivf_cold_bytes > 0, "cold lists were probed");
}

/// The `serve.ivf.*` counters published by a run mirror the stats ledger
/// exactly, the pre-existing tier identities still hold with IVF traffic
/// folded in, and the whole export is byte-identical at 1 and 8 threads.
#[test]
fn ivf_counters_published_and_thread_invariant() {
    let run = |threads: usize| {
        let emb = embedding(400, 9);
        let sys = system();
        let rec = Recorder::enabled();
        let cfg = config(4)
            .threads(threads)
            .index(IndexMode::Ivf {
                nlist: 0,
                nprobe: 0,
            })
            .ivf_hot_bytes(1 << 10);
        let mut srv = EmbedServer::new(&sys, &emb, cfg)
            .unwrap()
            .with_recorder(&rec, Track::MAIN);
        let mut load = RequestStream::new(
            WorkloadConfig::lookups(400, Popularity::Zipf { s: 1.0 }, 21).with_topk(0.3, 8),
        );
        let report = srv.run(&mut load, 1_500);
        (report, rec.metrics_jsonl())
    };
    let (report, metrics) = run(1);
    let st = &report.stats;
    assert!(st.ivf_queries > 0 && st.ivf_queries == st.topks);

    let rows = omega_obs::export::parse_metrics_jsonl(&metrics).unwrap();
    let counter = |name: &str| {
        rows.iter()
            .find(|(k, n, _)| k == "counter" && n == name)
            .map(|(_, _, v)| *v as u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("serve.ivf.queries"), st.ivf_queries);
    assert_eq!(counter("serve.ivf.probes"), st.ivf_probes);
    assert_eq!(counter("serve.ivf.centroid.bytes"), st.ivf_centroid_bytes);
    assert_eq!(counter("serve.ivf.list.dram.bytes"), st.ivf_dram_bytes);
    assert_eq!(counter("serve.ivf.list.cold.bytes"), st.ivf_cold_bytes);
    // IVF traffic feeds the same tier ledger the exact path uses.
    assert_eq!(report.traffic.pm_bytes, st.cold_read_bytes);
    assert_eq!(
        report.traffic.dram_bytes,
        st.dram_read_bytes + st.dram_write_bytes
    );
    assert!(st.ivf_cold_bytes <= st.cold_read_bytes);
    assert!(st.ivf_centroid_bytes + st.ivf_dram_bytes <= st.dram_read_bytes);

    let (_, par) = run(8);
    assert_eq!(metrics, par, "IVF metrics must not depend on thread count");
}

/// IVF edge cases: `k = 0`, `k` far past the probed union, and the
/// empty lists a degenerate (constant) table leaves behind.
#[test]
fn ivf_edge_cases_answer_exactly() {
    let emb = embedding(40, 10);
    let sys = system();
    let cfg = config(4).index(IndexMode::Ivf {
        nlist: 8,
        nprobe: 2,
    });
    let mut srv = EmbedServer::new(&sys, &emb, cfg).unwrap();
    let query = emb.vector(7).to_vec();

    // k = 0 is a legal no-op.
    assert!(srv.top_k(&query, 0).is_empty());

    // k far past the probed rows: the answer is exactly the probed union,
    // in oracle order with oracle score bits.
    let got = srv.top_k_nprobe(&query, 100, Some(2));
    let ivf = srv.ivf().unwrap();
    let mut scores = Vec::new();
    let lists = ivf.select_lists(&query, Metric::Dot, 2, &mut scores);
    let union: usize = lists.iter().map(|&c| ivf.list_ids(c as usize).len()).sum();
    assert_eq!(
        got.len(),
        union,
        "k past the union returns every probed row"
    );
    let expect: Vec<(u32, f32)> = emb
        .top_k(&query, 40, Metric::Dot)
        .into_iter()
        .filter(|(v, _)| lists.iter().any(|&c| ivf.list_ids(c as usize).contains(v)))
        .collect();
    assert_eq!(got, expect);

    // A constant table collapses k-means onto one cluster; the empty rest
    // probe for free and answers stay exact — even probing a single list.
    let flat = Embedding::from_row_major(64, 4, vec![1.0; 64 * 4]);
    let cfg = config(4).index(IndexMode::Ivf {
        nlist: 8,
        nprobe: 8,
    });
    let mut srv = EmbedServer::new(&sys, &flat, cfg).unwrap();
    let empties = srv.ivf().unwrap().empty_list_count();
    assert_eq!(empties, 7, "all rows collapse into one list");
    let q = vec![1.0; 4];
    let want = flat.top_k(&q, 5, Metric::Dot);
    assert_eq!(srv.top_k(&q, 5), want);
    assert_eq!(srv.top_k_nprobe(&q, 5, Some(1)), want);
}
