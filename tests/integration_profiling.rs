//! The profiling determinism contract, end to end: wall-clock profiling
//! (ambient `PoolProfiler`, phase scopes, worker timelines) observes the
//! system without perturbing it. Every simulated observable — total sim
//! time, byte traffic, the full metrics JSONL export, embeddings — is
//! byte-identical with profiling enabled or disabled, at wall threads 1
//! and 8, for both the serving and the training path. The profiled runs
//! must also actually profile: non-vacuous pool activity, exact interval
//! accounting, and collapsed stacks that include the bridged pool tracks.

use omega::hetmem::{DeviceKind, MemSystem, Placement, Topology};
use omega::obs::{record_pool_timeline, Recorder, Track};
use omega::par::{install, PoolProfiler};
use omega::serve::{EmbedServer, Popularity, RequestStream, ServeConfig, WorkloadConfig};
use omega_embed::prone::{Prone, ProneConfig};
use omega_graph::RmatConfig;
use omega_spmm::{SpmmConfig, SpmmEngine};

const WALL_THREADS: [usize; 2] = [1, 8];

/// One fixed-seed serving run; returns `(sim_ns, bytes, metrics_jsonl)` —
/// every simulated observable — plus the recorder for span inspection.
fn serve_run(threads: usize) -> (u64, u64, String, Recorder) {
    let emb = omega::Embedding::from_matrix(&omega::linalg::gaussian_matrix(1_500, 8, 42));
    let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
    let cfg = ServeConfig::new(8 * 32 * 8 * 4)
        .rows_per_shard(32)
        .cold(Placement::node(0, DeviceKind::Pm))
        .threads(threads);
    let rec = Recorder::enabled();
    let mut srv = EmbedServer::new(&sys, &emb, cfg)
        .unwrap()
        .with_recorder(&rec, Track::MAIN);
    let mut load = RequestStream::new(
        WorkloadConfig::lookups(1_500, Popularity::Zipf { s: 1.0 }, 7).with_topk(0.1, 6),
    );
    let report = srv.run(&mut load, 1_200);
    (
        report.total_sim.as_nanos(),
        report.traffic.total_bytes,
        rec.metrics_jsonl(),
        rec,
    )
}

/// One fixed-seed training run; returns `(sim_ns, embedding, metrics)`.
fn prone_run(wall_threads: usize) -> (u64, Vec<f32>, String) {
    let csr = RmatConfig::social(600, 5_000, 17).generate_csr().unwrap();
    let sys = MemSystem::new(Topology::paper_machine_scaled(16 << 20));
    let rec = Recorder::enabled();
    let engine = SpmmEngine::new(sys, SpmmConfig::omega(4))
        .unwrap()
        .with_recorder(rec.clone())
        .with_wall_threads(wall_threads);
    let prone = Prone::new(
        engine,
        ProneConfig {
            dim: 16,
            oversample: 8,
            threads: wall_threads,
            ..ProneConfig::default()
        },
    );
    let (emb, report) = prone.embed(&csr).unwrap();
    (
        report.total().as_nanos(),
        emb.data().to_vec(),
        rec.metrics_jsonl(),
    )
}

/// Serving: sim time, bytes, and the metrics export are byte-identical
/// with profiling on or off at every wall-thread count — and the profiled
/// runs record real, exactly-accounted pool activity.
#[test]
fn serving_observables_identical_with_profiling_on_or_off() {
    let (base_sim, base_bytes, base_metrics, _) = serve_run(1);
    assert!(!base_metrics.is_empty());
    for threads in WALL_THREADS {
        // Unprofiled.
        let (sim, bytes, metrics, _) = serve_run(threads);
        assert_eq!(sim, base_sim, "sim_ns drifted at threads={threads}");
        assert_eq!(bytes, base_bytes, "bytes drifted at threads={threads}");
        assert_eq!(
            metrics, base_metrics,
            "metrics drifted at threads={threads}"
        );
        // Profiled.
        let prof = PoolProfiler::enabled();
        let (sim, bytes, metrics, _) = {
            let _guard = install(&prof);
            serve_run(threads)
        };
        assert_eq!(
            sim, base_sim,
            "profiling changed sim_ns at threads={threads}"
        );
        assert_eq!(
            bytes, base_bytes,
            "profiling changed bytes at threads={threads}"
        );
        assert_eq!(
            metrics, base_metrics,
            "profiling changed the metrics export at threads={threads}"
        );
        // Non-vacuous: phase scopes fired, and the accounting identities
        // hold on whatever was recorded.
        let labels: Vec<String> = prof.profiles().into_iter().map(|(l, _)| l).collect();
        for phase in ["fetch", "lookup", "topk"] {
            assert!(
                labels.iter().any(|l| l == phase),
                "phase {phase:?} missing from profiled serving run at \
                 threads={threads}: {labels:?}"
            );
        }
        let total = prof.total();
        assert!(total.calls + total.seq_calls > 0);
        assert_eq!(
            total.exec_ns + total.idle_ns + total.park_ns + total.barrier_ns,
            total.worker_wall_ns
        );
        assert_eq!(
            total.exec_wall_ns + total.idle_wall_ns + total.park_wall_ns + total.barrier_wall_ns,
            total.wall_ns
        );
    }
}

/// Training: embedding bits, sim time, and metrics are identical with
/// profiling on or off at wall threads 1 and 8.
#[test]
fn training_observables_identical_with_profiling_on_or_off() {
    let (base_sim, base_emb, base_metrics) = prone_run(1);
    assert!(!base_metrics.is_empty());
    for threads in WALL_THREADS {
        let prof = PoolProfiler::enabled();
        let (sim, emb, metrics) = {
            let _guard = install(&prof);
            prone_run(threads)
        };
        assert_eq!(
            sim, base_sim,
            "profiling changed sim_ns at threads={threads}"
        );
        assert_eq!(
            metrics, base_metrics,
            "profiling changed training metrics at threads={threads}"
        );
        assert_eq!(emb.len(), base_emb.len());
        for (i, (a, b)) in base_emb.iter().zip(&emb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "embedding entry {i} drifted under profiling at threads={threads}"
            );
        }
        let labels: Vec<String> = prof.profiles().into_iter().map(|(l, _)| l).collect();
        for phase in ["read", "tsvd", "propagate", "combine"] {
            assert!(
                labels.iter().any(|l| l == phase),
                "phase {phase:?} missing from profiled training run at \
                 threads={threads}: {labels:?}"
            );
        }
    }
}

/// The pool-timeline bridge adds spans to the recorder (so collapsed
/// stacks and traces show worker activity) without moving any simulated
/// clock: the metrics export is untouched and every bridged span carries
/// zero simulated duration.
#[test]
fn pool_timeline_bridge_is_sim_invisible() {
    let prof = PoolProfiler::enabled();
    // Pin the dispatch policy: the bridge needs real pool calls even on
    // single-core hosts, where the default adaptive policy would keep the
    // serve fan-outs inline.
    let (_, _, metrics_before, rec) =
        omega::par::with_dispatch_policy(omega::par::DispatchPolicy::always_parallel(), || {
            let _guard = install(&prof);
            serve_run(8)
        });
    let spans_before = rec.spans().len();
    record_pool_timeline(&rec, &prof, 1);
    let spans = rec.spans();
    assert!(
        spans.len() > spans_before,
        "bridge added no spans despite recorded pool calls"
    );
    for span in &spans[spans_before..] {
        assert_eq!(
            span.track.pid, 1,
            "bridged spans must live on their own pid"
        );
        assert_eq!(
            span.sim_dur_ns, 0,
            "bridged span {:?} carries simulated time",
            span.name
        );
    }
    assert_eq!(
        rec.metrics_jsonl(),
        metrics_before,
        "bridging pool timelines changed the metrics export"
    );
    let collapsed = rec.collapsed_stacks();
    assert!(
        collapsed.lines().any(|l| l.starts_with("pool:")),
        "collapsed stacks lack pool worker frames:\n{collapsed}"
    );
}
