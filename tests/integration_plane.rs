//! Integration tests for `omega-plane` — the admission-controlled request
//! plane over a replicated serving tier.
//!
//! Pins the subsystem's three contracts:
//!
//! 1. **Determinism** — per seed, the full metrics JSONL export is
//!    byte-identical at any wall-thread count, at every replica count, and
//!    the arrival processes themselves are pure functions of the seed
//!    (property-tested across process shapes).
//! 2. **Bounded overload** — past saturation the *served* p99 stays within
//!    a few deadlines; the excess shows up in the drop / degrade / reject
//!    counters instead of an unbounded queue.
//! 3. **Accounting identities** — `offered = admitted + rejected_quota +
//!    rejected_queue`, `admitted = completed + degraded + dropped` and
//!    `degraded = reduced_k + to_get`, per tenant and in aggregate.

use omega_plane::{
    generate_timeline, ArrivalProcess, PlaneConfig, PlaneReport, Priority, RequestPlane, TenantSpec,
};
use proptest::prelude::*;

use omega_embed::Embedding;
use omega_hetmem::{DeviceKind, MemSystem, SimDuration, Topology};
use omega_obs::Recorder;
use omega_serve::{Popularity, ServeConfig, WorkloadConfig};

const HORIZON_S: f64 = 0.05;

fn tenant_mix(rate: f64) -> Vec<TenantSpec> {
    let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.2, 8);
    vec![
        TenantSpec::poisson("interactive", rate * 0.6, wl).with_priority(Priority::High),
        TenantSpec::poisson("batch", rate * 0.4, wl).with_priority(Priority::Low),
    ]
}

/// Build a small plane over `replicas` replicas and run the two-tenant mix,
/// returning the report plus the metrics JSONL export.
fn run_plane(
    replicas: usize,
    threads: usize,
    seed: u64,
    rate: f64,
    fault_plan: Option<omega_faults::FaultPlanSpec>,
) -> (PlaneReport, String) {
    let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
    let systems: Vec<MemSystem> = (0..replicas)
        .map(|_| {
            let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
            match &fault_plan {
                Some(spec) => omega_faults::install_plan(&sys, spec.clone()),
                None => sys,
            }
        })
        .collect();
    let serve_cfg = ServeConfig::new(8 << 10)
        .rows_per_shard(32)
        .batch_size(16)
        .threads(threads);
    let cfg = PlaneConfig::new(replicas)
        .seed(seed)
        .horizon(SimDuration::from_secs_f64(HORIZON_S));
    let rec = Recorder::enabled();
    let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg)
        .unwrap()
        .with_recorder(&rec);
    let report = plane.run(&tenant_mix(rate));
    (report, rec.metrics_jsonl())
}

/// The acceptance pin: per seed, the metrics JSONL is byte-identical
/// across wall-thread counts 1 and 8, at replica counts 1 and 4.
#[test]
fn metrics_byte_identical_across_wall_threads_and_replica_counts() {
    for replicas in [1usize, 4] {
        let (r1, m1) = run_plane(replicas, 1, 42, 20_000.0, None);
        let (r8, m8) = run_plane(replicas, 8, 42, 20_000.0, None);
        assert!(!m1.is_empty());
        assert_eq!(
            m1, m8,
            "{replicas} replica(s): metrics JSONL must not depend on the wall-thread count"
        );
        assert_eq!(r1.stats, r8.stats);
        assert_eq!(r1.latency_ns, r8.latency_ns);
        assert_eq!(r1.queue_wait_ns, r8.queue_wait_ns);
    }
}

#[test]
fn different_seeds_give_different_timelines() {
    let (a, _) = run_plane(2, 1, 1, 20_000.0, None);
    let (b, _) = run_plane(2, 1, 2, 20_000.0, None);
    assert_ne!(
        (a.stats.offered, a.latency_ns),
        (b.stats.offered, b.latency_ns),
        "the seed must actually steer the arrival draws"
    );
}

#[test]
fn accounting_identities_hold_per_tenant_and_in_aggregate() {
    let (report, _) = run_plane(2, 1, 42, 30_000.0, None);
    for (label, s) in std::iter::once(("aggregate", &report.stats)).chain(
        report
            .per_tenant
            .iter()
            .enumerate()
            .map(|(i, s)| (if i == 0 { "interactive" } else { "batch" }, s)),
    ) {
        assert_eq!(
            s.offered,
            s.admitted + s.rejected_quota + s.rejected_queue,
            "{label}: every offered request gets exactly one admission verdict: {s:?}"
        );
        assert_eq!(
            s.admitted,
            s.completed + s.degraded + s.dropped,
            "{label}: every admitted request reaches exactly one terminal state: {s:?}"
        );
        assert_eq!(
            s.degraded,
            s.degraded_reduced_k + s.degraded_to_get,
            "{label}: the degrade split must cover every degrade: {s:?}"
        );
    }
    // Per-tenant slices sum to the aggregate.
    let summed: u64 = report.per_tenant.iter().map(|s| s.offered).sum();
    assert_eq!(summed, report.stats.offered);
    // One latency / wait sample per served request.
    let served = report.stats.completed + report.stats.degraded;
    assert_eq!(report.latency_ns.len() as u64, served);
    assert_eq!(report.queue_wait_ns.len() as u64, served);
}

/// Overload contract: with offered load far past capacity and a tight SLO,
/// the served p99 stays within a few deadlines — the excess is counted as
/// rejections, drops and degrades, never parked in an unbounded queue.
#[test]
fn overload_keeps_served_p99_bounded() {
    let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
    let systems = vec![MemSystem::new(Topology::paper_machine_scaled(8 << 20))];
    let serve_cfg = ServeConfig::new(8 << 10).rows_per_shard(32).batch_size(16);
    let cfg = PlaneConfig::new(1)
        .seed(7)
        .horizon(SimDuration::from_secs_f64(HORIZON_S));
    let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg).unwrap();
    let deadline_ns = 300_000;
    let tenants: Vec<TenantSpec> = tenant_mix(400_000.0)
        .into_iter()
        .map(|t| t.with_quota(30_000.0, 16.0).with_deadline_ns(deadline_ns))
        .collect();
    let report = plane.run(&tenants);
    let s = &report.stats;
    assert!(s.identity_holds(), "{s:?}");
    assert!(
        s.rejected_quota + s.rejected_queue > 0,
        "quota/queue admission must trip under 13x overload: {s:?}"
    );
    assert!(
        s.dropped + s.degraded > 0,
        "the deadline scheduler must shed late work: {s:?}"
    );
    let p99 = report.latency_percentile_ns(0.99);
    assert!(
        p99 < 4 * deadline_ns,
        "served p99 {p99} ns must stay within a few deadlines ({deadline_ns} ns)"
    );
}

/// The degrade ladder on IVF replicas: the reduced-k rung also halves the
/// probe count, so degraded answers cost about half the scan — visible as
/// a probe deficit versus `queries * nprobe` — while the accounting
/// identities and thread-count determinism survive untouched.
#[test]
fn degrade_ladder_halves_nprobe_on_ivf_replicas() {
    let run = |threads: usize| {
        let emb = Embedding::from_matrix(&omega_linalg::gaussian_matrix(512, 8, 5));
        let systems = vec![MemSystem::new(Topology::paper_machine_scaled(8 << 20))];
        let serve_cfg = ServeConfig::new(8 << 10)
            .rows_per_shard(32)
            .batch_size(16)
            .threads(threads)
            .index(omega_serve::IndexMode::Ivf {
                nlist: 0,
                nprobe: 0,
            });
        let cfg = PlaneConfig::new(1)
            .seed(7)
            .horizon(SimDuration::from_secs_f64(HORIZON_S));
        let rec = Recorder::enabled();
        let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg)
            .unwrap()
            .with_recorder(&rec);
        // A top-k-heavy overloaded mix. The deadline sits inside the
        // reduced-k band — at least half the replica's full top-k
        // estimate but below the whole scan — so the ladder's middle rung
        // fires rather than completing at full fidelity (looser SLO) or
        // collapsing straight to point lookups (tighter SLO).
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.5, 8);
        let tenants = vec![
            TenantSpec::poisson("interactive", 240_000.0, wl)
                .with_priority(Priority::High)
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(550_000),
            TenantSpec::poisson("batch", 160_000.0, wl)
                .with_priority(Priority::Low)
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(550_000),
        ];
        let report = plane.run(&tenants);
        let nprobe = plane.servers()[0].ivf().unwrap().nprobe();
        let st = plane.servers()[0].stats().clone();
        (report, st, nprobe, rec.metrics_jsonl())
    };
    let (report, st, nprobe, metrics) = run(1);
    let s = &report.stats;
    assert!(s.identity_holds(), "{s:?}");
    assert!(
        s.degraded_reduced_k > 0,
        "the reduced-k rung must fire under 13x overload: {s:?}"
    );
    assert!(st.ivf_queries > 0, "top-k must route through the index");
    // Every full-fidelity query probes `nprobe` lists, every reduced-k one
    // probes half: a probe deficit proves the ladder reached the index.
    assert!(
        st.ivf_probes < st.ivf_queries * nprobe as u64,
        "{} probes over {} queries shows no halved-nprobe degrades",
        st.ivf_probes,
        st.ivf_queries
    );
    assert!(st.ivf_probes >= st.ivf_queries * ((nprobe / 2).max(1)) as u64);

    let (r8, st8, _, m8) = run(8);
    assert_eq!(metrics, m8, "IVF plane metrics must not depend on threads");
    assert_eq!(report.stats, r8.stats);
    assert_eq!(
        (st.ivf_queries, st.ivf_probes),
        (st8.ivf_queries, st8.ivf_probes)
    );
}

/// The plane composes with the fault layer: a timeout plan installed on
/// every replica steers the servers' internal hedge machinery without
/// breaking determinism or the accounting identities.
#[test]
fn fault_plan_on_replicas_is_deterministic_and_keeps_identities() {
    let spec = || omega_faults::FaultPlanSpec::new(1729).with_timeout(DeviceKind::Pm, 0.05, 50_000);
    let (ra, ma) = run_plane(2, 1, 42, 20_000.0, Some(spec()));
    let (rb, mb) = run_plane(2, 8, 42, 20_000.0, Some(spec()));
    assert_eq!(
        ma, mb,
        "fault injection must stay on the simulated clock: same plan, same bytes"
    );
    assert!(ra.stats.identity_holds(), "{:?}", ra.stats);
    assert_eq!(ra.stats, rb.stats);
    // The plan actually fired: without faults the same run serves more
    // cheaply, so the two metric exports must differ.
    let (_, clean) = run_plane(2, 1, 42, 20_000.0, None);
    assert_ne!(ma, clean, "the timeout plan must be observable");
}

fn process_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (1_000.0..50_000.0f64).prop_map(|rate_per_s| ArrivalProcess::Poisson { rate_per_s }),
        (1_000.0..20_000.0f64, 1.0..4.0f64, 0.01..0.2f64).prop_map(
            |(base, peak_mult, period_s)| ArrivalProcess::Diurnal {
                base_rate_per_s: base,
                peak_rate_per_s: base * peak_mult,
                period_s,
            }
        ),
        (1_000.0..10_000.0f64, 2.0..20.0f64, 0.0..0.04f64).prop_map(
            |(base, spike_mult, spike_start_s)| ArrivalProcess::FlashCrowd {
                base_rate_per_s: base,
                spike_rate_per_s: base * spike_mult,
                spike_start_s,
                spike_len_s: 0.01,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival processes are pure functions of `(seed, tenant)`: two draws
    /// agree element-wise, timestamps strictly increase (gaps are clamped
    /// to >= 1 ns) and stay inside the horizon.
    #[test]
    fn arrivals_are_deterministic_and_monotone(
        process in process_strategy(),
        seed in any::<u64>(),
        tenant in 0u32..8,
    ) {
        let horizon_ns = (HORIZON_S * 1e9) as u64;
        let a = process.arrivals(seed, tenant, horizon_ns);
        let b = process.arrivals(seed, tenant, horizon_ns);
        prop_assert_eq!(&a, &b, "same seed, same arrival stream");
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1], "inter-arrival gaps must be positive");
        }
        if let Some(&last) = a.last() {
            prop_assert!(last < horizon_ns);
        }
    }

    /// The merged timeline partitions exactly into the tenants' streams:
    /// per-tenant ordinals are dense from zero, every request carries its
    /// tenant's deadline offset, and the merge is sorted by arrival.
    #[test]
    fn tenant_mixes_partition_the_timeline(
        seed in any::<u64>(),
        rate_a in 2_000.0..30_000.0f64,
        rate_b in 2_000.0..30_000.0f64,
    ) {
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3);
        let tenants = vec![
            TenantSpec::poisson("a", rate_a, wl).with_deadline_ns(550_000),
            TenantSpec::poisson("b", rate_b, wl).with_deadline_ns(7_000_000),
        ];
        let horizon_ns = (HORIZON_S * 1e9) as u64;
        let timeline = generate_timeline(seed, &tenants, horizon_ns);

        prop_assert!(timeline.windows(2).all(|w| {
            (w[0].arrival_ns, w[0].tenant, w[0].index)
                <= (w[1].arrival_ns, w[1].tenant, w[1].index)
        }), "timeline must be sorted by (arrival, tenant, index)");

        let mut next_index = [0u64; 2];
        for req in &timeline {
            let ti = req.tenant as usize;
            prop_assert!(ti < 2);
            prop_assert_eq!(
                req.index, next_index[ti],
                "tenant ordinals must be dense and in arrival order"
            );
            next_index[ti] += 1;
            prop_assert_eq!(
                req.deadline_ns,
                req.arrival_ns + tenants[ti].deadline_ns,
                "deadline must be the tenant SLO past the arrival"
            );
        }
        // The partition is exact: per-tenant streams re-derived standalone
        // match what the merge contains.
        for (ti, t) in tenants.iter().enumerate() {
            let solo = t.process.arrivals(seed, ti as u32, horizon_ns);
            let merged: Vec<u64> = timeline
                .iter()
                .filter(|r| r.tenant as usize == ti)
                .map(|r| r.arrival_ns)
                .collect();
            prop_assert_eq!(solo, merged, "tenant {}'s stream must survive the merge intact", ti);
        }
    }
}
