//! Integration tests for `omega-plane` — the admission-controlled request
//! plane over a replicated serving tier with concurrent per-replica event
//! loops.
//!
//! Pins the subsystem's four contracts:
//!
//! 1. **Determinism** — per seed, the full metrics JSONL export is
//!    byte-identical at any wall-thread count, at every replica count,
//!    fault-free and under fault plans (golden snapshots under
//!    `tests/golden/`), and the arrival processes themselves are pure
//!    functions of the seed (property-tested across process shapes).
//! 2. **Partition** — the per-replica dispatch streams exactly partition
//!    the admitted set, and the streams are identical at every
//!    wall-thread count (property-tested across seeds and replica
//!    counts).
//! 3. **Bounded overload** — past saturation the *served* p99 stays within
//!    a few deadlines; the excess shows up in the drop / degrade / reject
//!    counters instead of an unbounded queue.
//! 4. **Accounting identities** — `offered = admitted + rejected_quota +
//!    rejected_queue`, `admitted = completed + degraded + dropped` and
//!    `degraded = reduced_k + to_get`, per tenant and in aggregate — also
//!    while a replica-wide outage kills and recovers a replica mid-run.
//!
//! The chaos CI matrix re-runs this suite with `OMEGA_FAULT_SEED` set;
//! non-golden fault tests draw their plan seed from it, golden tests pin
//! seed 1729 so the committed bytes never depend on the environment.

use omega_plane::{
    generate_timeline, ArrivalProcess, Outage, PlaneConfig, PlaneReport, PlaneTrace, Priority,
    RequestPlane, TenantSpec,
};
use proptest::prelude::*;
use std::path::PathBuf;

use omega_embed::Embedding;
use omega_hetmem::{DeviceKind, MemSystem, SimDuration, Topology};
use omega_obs::Recorder;
use omega_serve::{Popularity, ServeConfig, WorkloadConfig};

const HORIZON_S: f64 = 0.05;

/// Fault-plan seed for the non-golden chaos tests: the CI matrix varies
/// `OMEGA_FAULT_SEED`; locally the default keeps runs reproducible.
fn plan_seed() -> u64 {
    std::env::var("OMEGA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1729)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Compare `got` against the committed snapshot, or rewrite the snapshot
/// when `OMEGA_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("OMEGA_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); bless with OMEGA_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        got, want,
        "{name} drifted from the committed snapshot; if the change is \
         intentional, bless it with OMEGA_UPDATE_GOLDEN=1 and commit the diff"
    );
}

fn tenant_mix(rate: f64) -> Vec<TenantSpec> {
    let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.2, 8);
    vec![
        TenantSpec::poisson("interactive", rate * 0.6, wl).with_priority(Priority::High),
        TenantSpec::poisson("batch", rate * 0.4, wl).with_priority(Priority::Low),
    ]
}

/// Build a small plane over `replicas` replicas and run the two-tenant mix,
/// returning the report, the metrics JSONL export, and the plane itself
/// (for per-replica server stats).
fn run_plane(
    replicas: usize,
    threads: usize,
    seed: u64,
    rate: f64,
    fault_plan: Option<omega_faults::FaultPlanSpec>,
    outages: &[Outage],
) -> (PlaneReport, String, RequestPlane) {
    let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
    let systems: Vec<MemSystem> = (0..replicas)
        .map(|_| {
            let sys = MemSystem::new(Topology::paper_machine_scaled(8 << 20));
            match &fault_plan {
                Some(spec) => omega_faults::install_plan(&sys, spec.clone()),
                None => sys,
            }
        })
        .collect();
    let serve_cfg = ServeConfig::new(8 << 10)
        .rows_per_shard(32)
        .batch_size(16)
        .threads(threads);
    let cfg = PlaneConfig::new(replicas)
        .seed(seed)
        .horizon(SimDuration::from_secs_f64(HORIZON_S));
    let rec = Recorder::enabled();
    let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg)
        .unwrap()
        .with_recorder(&rec)
        .with_outages(outages);
    let report = plane.run(&tenant_mix(rate));
    (report, rec.metrics_jsonl(), plane)
}

/// Like [`run_plane`] but fault-free and recording the per-replica
/// dispatch streams.
fn run_plane_traced(
    replicas: usize,
    threads: usize,
    seed: u64,
    rate: f64,
) -> (PlaneReport, PlaneTrace) {
    let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
    let systems: Vec<MemSystem> = (0..replicas)
        .map(|_| MemSystem::new(Topology::paper_machine_scaled(8 << 20)))
        .collect();
    let serve_cfg = ServeConfig::new(8 << 10)
        .rows_per_shard(32)
        .batch_size(16)
        .threads(threads);
    let cfg = PlaneConfig::new(replicas)
        .seed(seed)
        .horizon(SimDuration::from_secs_f64(HORIZON_S));
    let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg).unwrap();
    plane.run_traced(&tenant_mix(rate))
}

/// The acceptance pin: per seed, the metrics JSONL is byte-identical
/// across wall-thread counts 1 and 8, at replica counts 1 and 4, with the
/// concurrent replica loops enabled.
#[test]
fn metrics_byte_identical_across_wall_threads_and_replica_counts() {
    for replicas in [1usize, 4] {
        let (r1, m1, _) = run_plane(replicas, 1, 42, 20_000.0, None, &[]);
        let (r8, m8, _) = run_plane(replicas, 8, 42, 20_000.0, None, &[]);
        assert!(!m1.is_empty());
        assert_eq!(
            m1, m8,
            "{replicas} replica(s): metrics JSONL must not depend on the wall-thread count"
        );
        assert_eq!(r1.stats, r8.stats);
        assert_eq!(r1.latency, r8.latency);
        assert_eq!(r1.queue_wait, r8.queue_wait);
    }
}

/// Golden snapshot: the full metrics JSONL of the fixed-seed fault-free
/// run, produced at 8 wall threads and proven equal to the 1-thread run.
#[test]
fn plane_metrics_parallel_match_golden() {
    let (_, m1, _) = run_plane(2, 1, 42, 20_000.0, None, &[]);
    let (_, m8, _) = run_plane(2, 8, 42, 20_000.0, None, &[]);
    assert_eq!(m1, m8, "plane metrics must not depend on wall threads");
    assert_golden("plane_metrics_parallel.jsonl", &m8);
}

/// Golden snapshot: the same fixed-seed run under a fault plan (PM
/// timeouts on every replica) plus a replica-1 outage window — the
/// steered-routing and fault-retry bytes are pinned too. Seed 1729 is
/// deliberately literal: goldens must not depend on `OMEGA_FAULT_SEED`.
#[test]
fn plane_metrics_parallel_faulted_match_golden() {
    let spec = || {
        omega_faults::FaultPlanSpec::new(1729)
            .with_timeout(DeviceKind::Pm, 0.05, 50_000)
            .with_outage(1, 10_000_000, 30_000_000)
    };
    let outages: Vec<Outage> = spec()
        .outages()
        .into_iter()
        .map(|(replica, from_ns, until_ns)| Outage {
            replica,
            from_ns,
            until_ns,
        })
        .collect();
    let (r1, m1, _) = run_plane(2, 1, 42, 20_000.0, Some(spec()), &outages);
    let (_, m8, _) = run_plane(2, 8, 42, 20_000.0, Some(spec()), &outages);
    assert_eq!(m1, m8, "faulted plane metrics must not depend on threads");
    assert!(r1.stats.identity_holds(), "{:?}", r1.stats);
    assert!(r1.stats.rerouted_outage > 0, "{:?}", r1.stats);
    assert_golden("plane_metrics_parallel_faulted.jsonl", &m8);
}

#[test]
fn different_seeds_give_different_timelines() {
    let (a, _, _) = run_plane(2, 1, 1, 20_000.0, None, &[]);
    let (b, _, _) = run_plane(2, 1, 2, 20_000.0, None, &[]);
    assert!(
        a.stats.offered != b.stats.offered || a.latency != b.latency,
        "the seed must actually steer the arrival draws"
    );
}

#[test]
fn accounting_identities_hold_per_tenant_and_in_aggregate() {
    let (report, _, _) = run_plane(2, 1, 42, 30_000.0, None, &[]);
    for (label, s) in std::iter::once(("aggregate", &report.stats)).chain(
        report
            .per_tenant
            .iter()
            .enumerate()
            .map(|(i, s)| (if i == 0 { "interactive" } else { "batch" }, s)),
    ) {
        assert_eq!(
            s.offered,
            s.admitted + s.rejected_quota + s.rejected_queue,
            "{label}: every offered request gets exactly one admission verdict: {s:?}"
        );
        assert_eq!(
            s.admitted,
            s.completed + s.degraded + s.dropped,
            "{label}: every admitted request reaches exactly one terminal state: {s:?}"
        );
        assert_eq!(
            s.degraded,
            s.degraded_reduced_k + s.degraded_to_get,
            "{label}: the degrade split must cover every degrade: {s:?}"
        );
    }
    // Per-tenant slices sum to the aggregate.
    let summed: u64 = report.per_tenant.iter().map(|s| s.offered).sum();
    assert_eq!(summed, report.stats.offered);
    // One latency / wait sample per served request.
    let served = report.stats.completed + report.stats.degraded;
    assert_eq!(report.latency.count(), served);
    assert_eq!(report.queue_wait.count(), served);
}

/// Overload contract: with offered load far past capacity and a tight SLO,
/// the served p99 stays within a few deadlines — the excess is counted as
/// rejections, drops and degrades, never parked in an unbounded queue.
#[test]
fn overload_keeps_served_p99_bounded() {
    let emb = Embedding::from_row_major(512, 8, vec![0.25; 512 * 8]);
    let systems = vec![MemSystem::new(Topology::paper_machine_scaled(8 << 20))];
    let serve_cfg = ServeConfig::new(8 << 10).rows_per_shard(32).batch_size(16);
    let cfg = PlaneConfig::new(1)
        .seed(7)
        .horizon(SimDuration::from_secs_f64(HORIZON_S));
    let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg).unwrap();
    let deadline_ns = 300_000;
    let tenants: Vec<TenantSpec> = tenant_mix(400_000.0)
        .into_iter()
        .map(|t| t.with_quota(30_000.0, 16.0).with_deadline_ns(deadline_ns))
        .collect();
    let report = plane.run(&tenants);
    let s = &report.stats;
    assert!(s.identity_holds(), "{s:?}");
    assert!(
        s.rejected_quota + s.rejected_queue > 0,
        "quota/queue admission must trip under 13x overload: {s:?}"
    );
    assert!(
        s.dropped + s.degraded > 0,
        "the deadline scheduler must shed late work: {s:?}"
    );
    let p99 = report.latency_percentile_ns(0.99);
    assert!(
        p99 < 4 * deadline_ns,
        "served p99 {p99} ns must stay within a few deadlines ({deadline_ns} ns)"
    );
}

/// The degrade ladder on IVF replicas: the reduced-k rung also halves the
/// probe count, so degraded answers cost about half the scan — visible as
/// a probe deficit versus `queries * nprobe` — while the accounting
/// identities and thread-count determinism survive untouched.
#[test]
fn degrade_ladder_halves_nprobe_on_ivf_replicas() {
    let run = |threads: usize| {
        let emb = Embedding::from_matrix(&omega_linalg::gaussian_matrix(512, 8, 5));
        let systems = vec![MemSystem::new(Topology::paper_machine_scaled(8 << 20))];
        let serve_cfg = ServeConfig::new(8 << 10)
            .rows_per_shard(32)
            .batch_size(16)
            .threads(threads)
            .index(omega_serve::IndexMode::Ivf {
                nlist: 0,
                nprobe: 0,
            });
        let cfg = PlaneConfig::new(1)
            .seed(7)
            .horizon(SimDuration::from_secs_f64(HORIZON_S));
        let rec = Recorder::enabled();
        let mut plane = RequestPlane::new(&systems, &emb, serve_cfg, cfg)
            .unwrap()
            .with_recorder(&rec);
        // A top-k-heavy overloaded mix. The deadline sits inside the
        // reduced-k band — at least half the replica's full top-k
        // estimate but below the whole scan — so the ladder's middle rung
        // fires rather than completing at full fidelity (looser SLO) or
        // collapsing straight to point lookups (tighter SLO).
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3).with_topk(0.5, 8);
        let tenants = vec![
            TenantSpec::poisson("interactive", 240_000.0, wl)
                .with_priority(Priority::High)
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(550_000),
            TenantSpec::poisson("batch", 160_000.0, wl)
                .with_priority(Priority::Low)
                .with_quota(30_000.0, 16.0)
                .with_deadline_ns(550_000),
        ];
        let report = plane.run(&tenants);
        let nprobe = plane.servers()[0].ivf().unwrap().nprobe();
        let st = plane.servers()[0].stats().clone();
        (report, st, nprobe, rec.metrics_jsonl())
    };
    let (report, st, nprobe, metrics) = run(1);
    let s = &report.stats;
    assert!(s.identity_holds(), "{s:?}");
    assert!(
        s.degraded_reduced_k > 0,
        "the reduced-k rung must fire under 13x overload: {s:?}"
    );
    assert!(st.ivf_queries > 0, "top-k must route through the index");
    // Every full-fidelity query probes `nprobe` lists, every reduced-k one
    // probes half: a probe deficit proves the ladder reached the index.
    assert!(
        st.ivf_probes < st.ivf_queries * nprobe as u64,
        "{} probes over {} queries shows no halved-nprobe degrades",
        st.ivf_probes,
        st.ivf_queries
    );
    assert!(st.ivf_probes >= st.ivf_queries * ((nprobe / 2).max(1)) as u64);

    let (r8, st8, _, m8) = run(8);
    assert_eq!(metrics, m8, "IVF plane metrics must not depend on threads");
    assert_eq!(report.stats, r8.stats);
    assert_eq!(
        (st.ivf_queries, st.ivf_probes),
        (st8.ivf_queries, st8.ivf_probes)
    );
}

/// The plane composes with the fault layer: a timeout plan installed on
/// every replica steers the servers' internal hedge machinery without
/// breaking determinism or the accounting identities. The plan seed comes
/// from `OMEGA_FAULT_SEED` so the CI chaos matrix exercises several
/// schedules.
#[test]
fn fault_plan_on_replicas_is_deterministic_and_keeps_identities() {
    let spec =
        || omega_faults::FaultPlanSpec::new(plan_seed()).with_timeout(DeviceKind::Pm, 0.05, 50_000);
    let (ra, ma, _) = run_plane(2, 1, 42, 20_000.0, Some(spec()), &[]);
    let (rb, mb, _) = run_plane(2, 8, 42, 20_000.0, Some(spec()), &[]);
    assert_eq!(
        ma, mb,
        "fault injection must stay on the simulated clock: same plan, same bytes"
    );
    assert!(ra.stats.identity_holds(), "{:?}", ra.stats);
    assert_eq!(ra.stats, rb.stats);
    // The plan actually fired: without faults the same run serves more
    // cheaply, so the two metric exports must differ.
    let (_, clean, _) = run_plane(2, 1, 42, 20_000.0, None, &[]);
    assert_ne!(ma, clean, "the timeout plan must be observable");
}

/// Replica-failure chaos: a whole replica goes down from the start of the
/// run and comes back at 30 ms (inside the 50 ms horizon), while a
/// timeout plan (seeded from the chaos matrix) harasses the memory path.
/// The ring steers its traffic to the survivor, the accounting identities
/// hold, recovery restores routing to the revived replica, and the
/// metrics stay byte-identical across wall-thread counts.
#[test]
fn replica_outage_chaos_reroutes_and_recovers() {
    let spec = || {
        omega_faults::FaultPlanSpec::new(plan_seed())
            .with_timeout(DeviceKind::Pm, 0.05, 50_000)
            .with_outage(0, 0, 30_000_000)
    };
    let outages: Vec<Outage> = spec()
        .outages()
        .into_iter()
        .map(|(replica, from_ns, until_ns)| Outage {
            replica,
            from_ns,
            until_ns,
        })
        .collect();
    let (r1, m1, plane1) = run_plane(2, 1, 42, 30_000.0, Some(spec()), &outages);
    let (r8, m8, _) = run_plane(2, 8, 42, 30_000.0, Some(spec()), &outages);
    assert_eq!(m1, m8, "chaos metrics must not depend on wall threads");
    assert_eq!(r1.stats, r8.stats);
    assert!(r1.stats.identity_holds(), "{:?}", r1.stats);
    assert!(
        r1.stats.rerouted_outage > 0,
        "the dead replica's traffic must steer to the survivor: {:?}",
        r1.stats
    );
    assert!(
        r1.stats.completed > 0,
        "the surviving replica must keep serving: {:?}",
        r1.stats
    );
    // Replica 0 was down from t=0: every request it served arrived after
    // the outage lifted, proving recovery restored the ring routing.
    assert!(
        plane1.servers()[0].stats().requests > 0,
        "recovery must restore routing to the revived replica"
    );
    assert!(plane1.servers()[1].stats().requests > 0);
}

fn process_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (1_000.0..50_000.0f64).prop_map(|rate_per_s| ArrivalProcess::Poisson { rate_per_s }),
        (1_000.0..20_000.0f64, 1.0..4.0f64, 0.01..0.2f64).prop_map(
            |(base, peak_mult, period_s)| ArrivalProcess::Diurnal {
                base_rate_per_s: base,
                peak_rate_per_s: base * peak_mult,
                period_s,
            }
        ),
        (1_000.0..10_000.0f64, 2.0..20.0f64, 0.0..0.04f64).prop_map(
            |(base, spike_mult, spike_start_s)| ArrivalProcess::FlashCrowd {
                base_rate_per_s: base,
                spike_rate_per_s: base * spike_mult,
                spike_start_s,
                spike_len_s: 0.01,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival processes are pure functions of `(seed, tenant)`: two draws
    /// agree element-wise, timestamps strictly increase (gaps are clamped
    /// to >= 1 ns) and stay inside the horizon.
    #[test]
    fn arrivals_are_deterministic_and_monotone(
        process in process_strategy(),
        seed in any::<u64>(),
        tenant in 0u32..8,
    ) {
        let horizon_ns = (HORIZON_S * 1e9) as u64;
        let a = process.arrivals(seed, tenant, horizon_ns);
        let b = process.arrivals(seed, tenant, horizon_ns);
        prop_assert_eq!(&a, &b, "same seed, same arrival stream");
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1], "inter-arrival gaps must be positive");
        }
        if let Some(&last) = a.last() {
            prop_assert!(last < horizon_ns);
        }
    }

    /// The merged timeline partitions exactly into the tenants' streams:
    /// per-tenant ordinals are dense from zero, every request carries its
    /// tenant's deadline offset, and the merge is sorted by arrival.
    #[test]
    fn tenant_mixes_partition_the_timeline(
        seed in any::<u64>(),
        rate_a in 2_000.0..30_000.0f64,
        rate_b in 2_000.0..30_000.0f64,
    ) {
        let wl = WorkloadConfig::lookups(512, Popularity::Zipf { s: 1.0 }, 3);
        let tenants = vec![
            TenantSpec::poisson("a", rate_a, wl).with_deadline_ns(550_000),
            TenantSpec::poisson("b", rate_b, wl).with_deadline_ns(7_000_000),
        ];
        let horizon_ns = (HORIZON_S * 1e9) as u64;
        let timeline = generate_timeline(seed, &tenants, horizon_ns);

        prop_assert!(timeline.windows(2).all(|w| {
            (w[0].arrival_ns, w[0].tenant, w[0].index)
                <= (w[1].arrival_ns, w[1].tenant, w[1].index)
        }), "timeline must be sorted by (arrival, tenant, index)");

        let mut next_index = [0u64; 2];
        for req in &timeline {
            let ti = req.tenant as usize;
            prop_assert!(ti < 2);
            prop_assert_eq!(
                req.index, next_index[ti],
                "tenant ordinals must be dense and in arrival order"
            );
            next_index[ti] += 1;
            prop_assert_eq!(
                req.deadline_ns,
                req.arrival_ns + tenants[ti].deadline_ns,
                "deadline must be the tenant SLO past the arrival"
            );
        }
        // The partition is exact: per-tenant streams re-derived standalone
        // match what the merge contains.
        for (ti, t) in tenants.iter().enumerate() {
            let solo = t.process.arrivals(seed, ti as u32, horizon_ns);
            let merged: Vec<u64> = timeline
                .iter()
                .filter(|r| r.tenant as usize == ti)
                .map(|r| r.arrival_ns)
                .collect();
            prop_assert_eq!(solo, merged, "tenant {}'s stream must survive the merge intact", ti);
        }
    }
}

proptest! {
    // Full plane runs are expensive; a handful of randomized shapes is
    // enough on top of the fixed-seed byte-equality pins above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The per-replica dispatch streams exactly partition the admitted
    /// set — every admitted request appears in exactly one stream, with
    /// its tie-break pinned: the streams (and hence the merged
    /// `(event_ns, replica, seq)` event order) are identical at 1 and 8
    /// wall threads.
    #[test]
    fn dispatch_streams_partition_the_admitted_set(
        seed in 0u64..1_000,
        replicas in 1usize..5,
        rate in 10_000.0..40_000.0f64,
    ) {
        let (report, trace) = run_plane_traced(replicas, 1, seed, rate);
        prop_assert!(report.stats.identity_holds());
        prop_assert_eq!(trace.streams.len(), replicas);

        // Exact partition: the union of the streams is the admitted set,
        // with no request duplicated or lost.
        let mut union: Vec<u64> = trace
            .streams
            .iter()
            .flat_map(|s| s.iter().map(|&(_, seq)| seq))
            .collect();
        union.sort_unstable();
        let mut admitted = trace.admitted.clone();
        admitted.sort_unstable();
        prop_assert!(
            admitted.windows(2).all(|w| w[0] < w[1]),
            "admitted ordinals must be unique"
        );
        prop_assert_eq!(&union, &admitted, "streams must partition the admitted set");
        prop_assert_eq!(union.len() as u64, report.stats.admitted);

        // Tie-break pinned: the same run at 8 wall threads produces the
        // identical streams, element for element.
        let (report8, trace8) = run_plane_traced(replicas, 8, seed, rate);
        prop_assert_eq!(report.stats, report8.stats);
        prop_assert_eq!(trace, trace8, "dispatch streams must not depend on wall threads");
    }
}
